// Spatial utilization characterization (Sec. IV-B, Fig. 7): node-level
// workload similarity, cross-region similarity, and region-agnostic
// workload detection.
#pragma once

#include <vector>

#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "stats/series.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

// All correlation sets below fan their per-node / per-subscription /
// per-service work out over the context's ParallelConfig. Partial results
// are merged in deterministic candidate order, so every function returns
// bit-identical output at any thread count; `threads = 1` is the plain
// serial loop. Every entry point takes an AnalysisContext (phase + counters
// land against the context's write-only metrics).

/// Fig. 7(a): Pearson correlation between each VM's utilization and its
/// host node's utilization, over VMs of one cloud that cover the window.
/// Nodes hosting a single VM are excluded (the paper filters this trivial
/// case). `max_nodes` caps work via deterministic stride subsampling.
std::vector<double> node_vm_correlations(const AnalysisContext& ctx,
                                         CloudType cloud,
                                         std::size_t max_nodes = 400);

/// Fig. 7(b): for every subscription of `cloud` deployed in >= 2 regions,
/// the Pearson correlation of its region-level average utilization for each
/// region pair. `max_vms_per_region` caps the VMs averaged per region.
std::vector<double> cross_region_correlations(
    const AnalysisContext& ctx, CloudType cloud,
    std::size_t max_subscriptions = 400, std::size_t max_vms_per_region = 25);

/// Region-level average utilization of one subscription (hourly means),
/// one series per deployed region — the raw material of Fig. 7(b,c).
struct RegionProfile {
  RegionId region;
  stats::TimeSeries hourly_utilization;
  std::size_t vms_used = 0;
};
std::vector<RegionProfile> subscription_region_profiles(
    const AnalysisContext& ctx, SubscriptionId sub,
    std::size_t max_vms_per_region = 25);

/// Fig. 7(c) + Insight 4: region-agnostic detection for a multi-region
/// service. A service is flagged region-agnostic when the minimum pairwise
/// cross-region correlation of its utilization exceeds the threshold.
struct RegionAgnosticVerdict {
  ServiceId service;
  std::size_t regions = 0;
  double min_pair_correlation = 0;
  double mean_pair_correlation = 0;
  bool region_agnostic = false;
};

std::vector<RegionAgnosticVerdict> detect_region_agnostic_services(
    const AnalysisContext& ctx, CloudType cloud, double min_correlation = 0.7,
    std::size_t max_vms_per_region = 25);

}  // namespace cloudlens::analysis
