// Figure-data emission: the raw series behind each paper figure as CSV.
//
// Extracted from the CLI so the figure bytes are a library product:
// `cloudlens figures` streams them to files, while the pipeline
// equivalence tests render them into memory and byte-compare across
// thread counts and cache states (cold compute vs. snapshot reload must
// be *identical*, not merely close).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "analysis/deployment.h"

namespace cloudlens {
class AnalysisContext;
}

namespace cloudlens::analysis {

/// Supplies the output stream for one figure file. Figures are written
/// strictly sequentially: the returned stream is fully written before the
/// next call, so implementations may recycle a single stream object.
using FigureOpener = std::function<std::ostream&(const std::string& name)>;

/// Write every figure CSV (fig1a, fig3a, fig3bc, fig5d, fig6 per cloud,
/// fig7a) through `open`. Deterministic: byte-identical at any thread
/// count for the same trace.
void write_figure_csvs(const AnalysisContext& ctx, const FigureOpener& open,
                       SimTime snapshot = kDefaultSnapshot);

}  // namespace cloudlens::analysis
