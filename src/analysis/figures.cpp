#include "analysis/figures.h"

#include <algorithm>
#include <ostream>
#include <vector>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "analysis/utilization.h"
#include "stats/ecdf.h"

namespace cloudlens::analysis {

void write_figure_csvs(const AnalysisContext& ctx, const FigureOpener& open,
                       SimTime snapshot) {
  auto write_two_cloud_cdf = [&](const std::string& name,
                                 const std::vector<double>& priv,
                                 const std::vector<double>& pub,
                                 const char* x_name) {
    std::ostream& out = open(name);
    const stats::Ecdf priv_cdf(priv), pub_cdf(pub);
    out << x_name << ",private_cdf,public_cdf\n";
    const double hi = std::max(priv.empty() ? 1.0 : priv.back(),
                               pub.empty() ? 1.0 : pub.back());
    for (double x = 1.0; x <= hi; x *= 1.15)
      out << x << ',' << priv_cdf.at(x) << ',' << pub_cdf.at(x) << '\n';
  };

  // Fig. 1(a) + Fig. 3(a).
  write_two_cloud_cdf("fig1a_vms_per_subscription.csv",
                      vms_per_subscription(ctx, CloudType::kPrivate, snapshot),
                      vms_per_subscription(ctx, CloudType::kPublic, snapshot),
                      "vms_per_subscription");
  write_two_cloud_cdf("fig3a_lifetimes.csv",
                      vm_lifetimes(ctx, CloudType::kPrivate),
                      vm_lifetimes(ctx, CloudType::kPublic),
                      "lifetime_seconds");

  // Fig. 3(b,c): hourly series for region 0.
  {
    std::ostream& out = open("fig3bc_temporal.csv");
    const auto priv_count =
        vm_count_per_hour(ctx, CloudType::kPrivate, RegionId(0));
    const auto pub_count =
        vm_count_per_hour(ctx, CloudType::kPublic, RegionId(0));
    const auto priv_new =
        creations_per_hour(ctx, CloudType::kPrivate, RegionId(0));
    const auto pub_new =
        creations_per_hour(ctx, CloudType::kPublic, RegionId(0));
    out << "hour,private_count,public_count,private_created,public_created\n";
    for (std::size_t i = 0; i < priv_count.size(); ++i)
      out << i << ',' << priv_count[i] << ',' << pub_count[i] << ','
          << priv_new[i] << ',' << pub_new[i] << '\n';
  }

  // Fig. 5(d).
  {
    std::ostream& out = open("fig5d_pattern_shares.csv");
    const auto priv = classify_population(ctx, CloudType::kPrivate, 1000);
    const auto pub = classify_population(ctx, CloudType::kPublic, 1000);
    out << "pattern,private,public\n";
    out << "diurnal," << priv.diurnal << ',' << pub.diurnal << '\n';
    out << "stable," << priv.stable << ',' << pub.stable << '\n';
    out << "irregular," << priv.irregular << ',' << pub.irregular << '\n';
    out << "hourly-peak," << priv.hourly_peak << ',' << pub.hourly_peak
        << '\n';
  }

  // Fig. 6: weekly percentile bands per cloud.
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const std::string name = std::string("fig6_weekly_") +
                             std::string(to_string(cloud)) + ".csv";
    std::ostream& out = open(name);
    const auto dist = utilization_distribution(ctx, cloud, 800);
    out << "hour,p25,p50,p75,p95\n";
    for (std::size_t i = 0; i < dist.weekly.grid.count; ++i)
      out << i << ',' << dist.weekly.p25[i] << ',' << dist.weekly.p50[i]
          << ',' << dist.weekly.p75[i] << ',' << dist.weekly.p95[i] << '\n';
  }

  // Fig. 7(a): correlation CDFs.
  {
    std::ostream& out = open("fig7a_node_correlation.csv");
    const stats::Ecdf priv(
        node_vm_correlations(ctx, CloudType::kPrivate, 200));
    const stats::Ecdf pub(node_vm_correlations(ctx, CloudType::kPublic, 200));
    out << "correlation,private_cdf,public_cdf\n";
    for (double x = -1.0; x <= 1.0; x += 0.02)
      out << x << ',' << priv.at(x) << ',' << pub.at(x) << '\n';
  }
}

}  // namespace cloudlens::analysis
