// Deployment characterization (Sec. III-A, III-C): deployment sizes,
// subscriptions per cluster, VM shapes, and regions per subscription.
#pragma once

#include <vector>

#include "cloudsim/trace.h"
#include "stats/boxplot.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

// Every snapshot pass takes an AnalysisContext (phase + counters land
// against the context's write-only metrics).

/// Fig. 1(a): number of VMs per subscription at a snapshot instant, for one
/// cloud. Subscriptions with no alive VM at the snapshot are skipped.
std::vector<double> vms_per_subscription(const AnalysisContext& ctx,
                                         CloudType cloud, SimTime snapshot);

/// Fig. 1(b): number of distinct subscriptions with at least one alive VM
/// per cluster at a snapshot, for one cloud (one sample per cluster).
std::vector<double> subscriptions_per_cluster(const AnalysisContext& ctx,
                                              CloudType cloud,
                                              SimTime snapshot);

/// Fig. 2: joint (cores, memory) histogram over VMs alive at the snapshot.
stats::Histogram2D vm_size_heatmap(const AnalysisContext& ctx,
                                   CloudType cloud, SimTime snapshot,
                                   std::size_t bins = 12);

/// Fig. 4: per-subscription deployed-region counts, plain and core-weighted.
struct RegionSpread {
  /// One entry per subscription with alive VMs: its distinct region count.
  std::vector<double> regions_per_subscription;
  /// cumulative_core_share[k-1] = fraction of all allocated cores owned by
  /// subscriptions deployed in <= k regions (the y-values of Fig. 4(b)).
  std::vector<double> cumulative_core_share;
  /// Convenience: share of cores held by single-region subscriptions
  /// (paper: ~40% private vs ~70% public).
  double single_region_core_share = 0;
};

RegionSpread region_spread(const AnalysisContext& ctx, CloudType cloud,
                           SimTime snapshot);

/// The default weekday-afternoon snapshot used across deployment analyses.
inline constexpr SimTime kDefaultSnapshot = 2 * kDay + 14 * kHour;  // Wed 14:00

}  // namespace cloudlens::analysis
