// Temporal deployment characterization (Sec. III-B): lifetimes, VM counts
// over time, creation rates, and cross-region burstiness (Fig. 3).
#pragma once

#include <vector>

#include "cloudsim/trace.h"
#include "stats/ecdf.h"
#include "stats/series.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

// Every pass below takes an AnalysisContext (it opens an "analysis.*"
// phase against the context's write-only metrics).

/// Fig. 3(a): lifetimes (seconds) of VMs that both started and ended inside
/// [window_start, window_end) — matching the paper's inclusion rule.
std::vector<double> vm_lifetimes(const AnalysisContext& ctx, CloudType cloud,
                                 SimTime window_start = 0,
                                 SimTime window_end = kWeek);

/// Share of `lifetimes` that fall below `bin_edge` (the paper's
/// "shortest lifetime bin" statistic: 49% private vs 81% public).
double shortest_bin_share(const std::vector<double>& lifetimes,
                          double bin_edge_seconds = 30.0 * 60.0);

/// Fig. 3(b): number of VMs alive at each hour boundary, one region.
/// Pass an invalid RegionId to aggregate over all regions.
stats::TimeSeries vm_count_per_hour(const AnalysisContext& ctx,
                                    CloudType cloud, RegionId region,
                                    const TimeGrid& grid = week_hourly_grid());

/// Fig. 3(c): VMs created per hour, one region (invalid = all regions).
stats::TimeSeries creations_per_hour(
    const AnalysisContext& ctx, CloudType cloud, RegionId region,
    const TimeGrid& grid = week_hourly_grid());

/// Fig. 3(d): the coefficient of variation of the hourly-creation series,
/// one value per region (regions with no creations are skipped).
std::vector<double> creation_cv_by_region(
    const AnalysisContext& ctx, CloudType cloud,
    const TimeGrid& grid = week_hourly_grid());

/// VM removals per hour (the paper notes removals behave like creations).
stats::TimeSeries removals_per_hour(const AnalysisContext& ctx,
                                    CloudType cloud, RegionId region,
                                    const TimeGrid& grid = week_hourly_grid());

}  // namespace cloudlens::analysis
