// Programmatic evaluation of the paper's four insights against a trace.
//
// Each verdict bundles the statistics an operator would check plus a bool
// stating whether the insight's contrast holds in this trace, using the
// same criteria as the figure benches. Shared by the CLI, examples, and
// integration tests.
#pragma once

#include <string>

#include "analysis/classifier.h"
#include "analysis/deployment.h"
#include "cloudsim/trace.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

struct InsightOptions {
  SimTime snapshot = kDefaultSnapshot;
  std::size_t classify_max_vms = 800;
  std::size_t correlation_max_nodes = 150;
  double region_agnostic_correlation = 0.7;
};

struct CloudContrast {
  double private_value = 0;
  double public_value = 0;
};

struct InsightVerdicts {
  // Insight 1: private deployments larger & more homogeneous; public
  // clusters host far more subscriptions and wider VM shapes.
  CloudContrast median_vms_per_subscription;
  CloudContrast median_subscriptions_per_cluster;
  bool insight1 = false;

  // Insight 2: private temporal deployment is low-amplitude + bursts;
  // public shows regular diurnal creations.
  CloudContrast median_creation_cv;
  CloudContrast shortest_lifetime_share;
  bool insight2 = false;

  // Insight 3: utilization patterns differ; diurnal dominates both, private
  // leans diurnal/hourly-peak, public leans stable.
  PatternShares private_mix;
  PatternShares public_mix;
  bool insight3 = false;

  // Insight 4: private node-level similarity high; region-agnostic
  // workloads abundant in the private cloud.
  CloudContrast median_node_correlation;
  double private_region_agnostic_share = 0;
  bool insight4 = false;

  bool all() const { return insight1 && insight2 && insight3 && insight4; }
};

/// Primary implementation: every sub-analysis runs against the context, so
/// its ParallelConfig reaches all batch passes (historically the classifier
/// and correlation passes silently ran at the default thread count here)
/// and its metrics registry collects the per-pass phases. Results are
/// bit-identical at any thread count.
InsightVerdicts evaluate_insights(const AnalysisContext& ctx,
                                  const InsightOptions& options = {});

/// Console rendering of the verdicts (one block per insight).
std::string render_insights(const InsightVerdicts& verdicts);

}  // namespace cloudlens::analysis
