// Bounded-RSS streaming over telemetry shards.
//
// The streaming analyses process their work items grouped by shard, in
// ascending shard-index order: all items of shard 0 fan out over the pool,
// the pool drains (ThreadPool::run blocks, providing the happens-before
// edge), the store evicts down to its mapped-bytes budget at that serial
// point, then shard 1 begins. Peak RSS is one-to-two mapped shards plus
// scratch instead of the whole panel.
//
// Determinism: each item writes only its own output slot, and callers
// assemble slots in item order afterwards — so the result is the same at
// any thread count *and* identical to the unsharded pass, which visits
// the same items with the same per-item kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "cloudsim/shard.h"
#include "common/parallel.h"

namespace cloudlens::analysis {

/// Runs item_fn(i) for every i in [0, n), grouped by shard_of_item(i),
/// shard by shard with budget eviction at each shard boundary. item_fn
/// must write only to slot i of its output (the parallel_for contract);
/// spans obtained from the store are valid within the current shard's
/// region only.
///
/// Works over any store with shard_count() + a serial-point
/// evict_over_budget() — the telemetry shard store and the population
/// shard store (cloudsim/population.h) share the contract, and for equal K
/// they shard identically (same subscription hash), so one grouping pass
/// serves either.
template <typename Store, typename ShardOf, typename Fn>
void stream_by_shard(const Store& shards, std::size_t n,
                     ShardOf&& shard_of_item, Fn&& item_fn,
                     const ParallelConfig& parallel) {
  std::vector<std::vector<std::size_t>> by_shard(shards.shard_count());
  for (std::size_t i = 0; i < n; ++i) {
    by_shard[shard_of_item(i)].push_back(i);
  }
  for (std::uint32_t s = 0; s < shards.shard_count(); ++s) {
    const std::vector<std::size_t>& items = by_shard[s];
    if (items.empty()) continue;
    parallel_for(
        items.size(), [&](std::size_t j) { item_fn(items[j]); }, parallel);
    shards.evict_over_budget();
  }
}

}  // namespace cloudlens::analysis
