#include "analysis/deployment.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/context.h"
#include "analysis/record_stream.h"
#include "common/check.h"

namespace cloudlens::analysis {

std::vector<double> vms_per_subscription(const AnalysisContext& ctx,
                                         CloudType cloud, SimTime snapshot) {
  auto phase = ctx.phase("analysis.vms_per_subscription");
  const TraceStore& trace = ctx.trace();
  std::unordered_map<SubscriptionId, std::size_t> counts;
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.alive_at(snapshot)) continue;
      ++counts[vm.subscription];
    }
  });
  std::vector<double> out;
  out.reserve(counts.size());
  for (const auto& [_, n] : counts) out.push_back(static_cast<double>(n));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> subscriptions_per_cluster(const AnalysisContext& ctx,
                                              CloudType cloud,
                                              SimTime snapshot) {
  auto phase = ctx.phase("analysis.subscriptions_per_cluster");
  const TraceStore& trace = ctx.trace();
  std::unordered_map<ClusterId, std::unordered_set<SubscriptionId>> subs;
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.alive_at(snapshot) || !vm.placed()) {
        continue;
      }
      subs[vm.cluster].insert(vm.subscription);
    }
  });
  std::vector<double> out;
  // One sample per cluster of this cloud, including empty clusters.
  for (const auto& cluster : trace.topology().clusters()) {
    if (cluster.cloud != cloud) continue;
    const auto it = subs.find(cluster.id);
    out.push_back(it == subs.end() ? 0.0
                                   : static_cast<double>(it->second.size()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

stats::Histogram2D vm_size_heatmap(const AnalysisContext& ctx,
                                   CloudType cloud, SimTime snapshot,
                                   std::size_t bins) {
  auto phase = ctx.phase("analysis.vm_size_heatmap");
  const TraceStore& trace = ctx.trace();
  // Log axes spanning the smallest burstable to the largest memory-optimized
  // shapes; identical for both clouds so the heatmaps are comparable.
  stats::Histogram2D hist(
      stats::BinAxis(0.5, 64.0, bins, stats::BinScale::kLog),
      stats::BinAxis(0.25, 1024.0, bins, stats::BinScale::kLog));
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.alive_at(snapshot)) continue;
      hist.add(vm.cores, vm.memory_gb);
    }
  });
  return hist;
}

RegionSpread region_spread(const AnalysisContext& ctx, CloudType cloud,
                           SimTime snapshot) {
  auto phase = ctx.phase("analysis.region_spread");
  const TraceStore& trace = ctx.trace();
  struct SubAgg {
    std::unordered_set<RegionId> regions;
    double cores = 0;
  };
  std::unordered_map<SubscriptionId, SubAgg> agg;
  // Per-VM cores accumulate in ascending id order within a subscription in
  // both modes (resident scan and shard groups both ascend, and a
  // subscription never crosses shards), so each SubAgg is bit-identical.
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.alive_at(snapshot)) continue;
      auto& a = agg[vm.subscription];
      a.regions.insert(vm.region);
      a.cores += vm.cores;
    }
  });

  RegionSpread out;
  const std::size_t max_regions = trace.topology().regions().size();
  std::vector<double> cores_by_count(max_regions, 0.0);
  double total_cores = 0;
  // The cross-subscription core sums are order-sensitive floating point:
  // reduce in ascending subscription id, not hash-map iteration order, so
  // the result is a pure function of the data (identical across modes and
  // library hash implementations).
  std::vector<SubscriptionId> subs_sorted;
  subs_sorted.reserve(agg.size());
  for (const auto& [sub, _] : agg) subs_sorted.push_back(sub);
  std::sort(subs_sorted.begin(), subs_sorted.end(),
            [](SubscriptionId a, SubscriptionId b) {
              return a.value() < b.value();
            });
  for (const SubscriptionId sub : subs_sorted) {
    const SubAgg& a = agg.at(sub);
    const std::size_t k = a.regions.size();
    CL_CHECK(k >= 1 && k <= max_regions);
    out.regions_per_subscription.push_back(static_cast<double>(k));
    cores_by_count[k - 1] += a.cores;
    total_cores += a.cores;
  }
  std::sort(out.regions_per_subscription.begin(),
            out.regions_per_subscription.end());

  out.cumulative_core_share.assign(max_regions, 0.0);
  double run = 0;
  for (std::size_t k = 0; k < max_regions; ++k) {
    run += cores_by_count[k];
    out.cumulative_core_share[k] = total_cores > 0 ? run / total_cores : 0.0;
  }
  out.single_region_core_share =
      total_cores > 0 ? cores_by_count[0] / total_cores : 0.0;
  return out;
}

}  // namespace cloudlens::analysis
