#include "analysis/report.h"

#include <optional>
#include <ostream>

#include "analysis/context.h"
#include "analysis/deployment.h"
#include "analysis/record_stream.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "analysis/utilization.h"
#include "common/table.h"
#include "stats/descriptive.h"

namespace cloudlens::analysis {
namespace {

void md_row(std::ostream& out, const std::string& metric, double priv,
            double pub, int precision = 2) {
  out << "| " << metric << " | " << format_double(priv, precision) << " | "
      << format_double(pub, precision) << " |\n";
}

void md_header(std::ostream& out) {
  out << "| metric | private | public |\n|---|---|---|\n";
}

}  // namespace

InsightVerdicts write_characterization_report(const AnalysisContext& ctx,
                                              std::ostream& out,
                                              const ReportOptions& options) {
  auto timer = ctx.phase("analysis.report", obs::Histogram::kReportSeconds,
                         obs::Counter::kAnalysisReports);
  const TraceStore& trace = ctx.trace();
  const auto v = evaluate_insights(ctx, options.insights);
  const SimTime snap = options.insights.snapshot;

  out << "# " << options.title << "\n\n";
  out << "Trace: " << trace.vm_count() << " VMs, "
      << trace.subscription_count() << " subscriptions, "
      << trace.services().size() << " first-party services, "
      << trace.topology().regions().size() << " regions. Snapshot at "
      << format_sim_time(snap) << ".\n\n";

  out << "## Summary of insight verdicts\n\n";
  out << "| insight | finding | verdict |\n|---|---|---|\n";
  auto verdict = [](bool ok) { return ok ? "**holds**" : "not observed"; };
  out << "| 1 | private deployments larger; public clusters denser | "
      << verdict(v.insight1) << " |\n"
      << "| 2 | private churn bursty; public diurnal & short-lived | "
      << verdict(v.insight2) << " |\n"
      << "| 3 | utilization pattern mixes differ | " << verdict(v.insight3)
      << " |\n"
      << "| 4 | private homogeneous per node; region-agnostic | "
      << verdict(v.insight4) << " |\n\n";

  out << "## Deployment characteristics (Sec. III)\n\n";
  md_header(out);
  md_row(out, "median VMs per subscription",
         v.median_vms_per_subscription.private_value,
         v.median_vms_per_subscription.public_value, 1);
  md_row(out, "median subscriptions per cluster",
         v.median_subscriptions_per_cluster.private_value,
         v.median_subscriptions_per_cluster.public_value, 1);
  {
    const auto priv = region_spread(ctx, CloudType::kPrivate, snap);
    const auto pub = region_spread(ctx, CloudType::kPublic, snap);
    md_row(out, "single-region core share",
           priv.single_region_core_share, pub.single_region_core_share);
    md_row(out, "median deployed regions",
           priv.regions_per_subscription.empty()
               ? 0
               : stats::quantile_sorted(priv.regions_per_subscription, 0.5),
           pub.regions_per_subscription.empty()
               ? 0
               : stats::quantile_sorted(pub.regions_per_subscription, 0.5),
           1);
  }
  out << "\n";

  out << "## Temporal behaviour (Sec. III-B)\n\n";
  md_header(out);
  md_row(out, "share of lifetimes < 30 min",
         v.shortest_lifetime_share.private_value,
         v.shortest_lifetime_share.public_value);
  md_row(out, "median CV of hourly creations",
         v.median_creation_cv.private_value,
         v.median_creation_cv.public_value);
  out << "\n";

  out << "## Utilization patterns (Sec. IV-A)\n\n";
  out << "| pattern | private | public |\n|---|---|---|\n";
  md_row(out, "diurnal", v.private_mix.diurnal, v.public_mix.diurnal);
  md_row(out, "stable", v.private_mix.stable, v.public_mix.stable);
  md_row(out, "irregular", v.private_mix.irregular, v.public_mix.irregular);
  md_row(out, "hourly-peak", v.private_mix.hourly_peak,
         v.public_mix.hourly_peak);
  out << "\n";
  {
    // Real single-cloud traces (an Azure Public Dataset import has no
    // private side) must not trip utilization_distribution's
    // empty-population check; those cells render as "-" instead.
    auto distribution_if_covered = [&](CloudType cloud)
        -> std::optional<UtilizationDistribution> {
      const TimeGrid& grid = trace.telemetry_grid();
      const bool covered = any_vm(trace, [&](const VmRecord& vm) {
        return vm.cloud == cloud && vm.covers(grid) &&
               vm.utilization != nullptr;
      });
      if (covered) {
        return utilization_distribution(ctx, cloud,
                                        options.insights.classify_max_vms);
      }
      return std::nullopt;
    };
    const auto priv = distribution_if_covered(CloudType::kPrivate);
    const auto pub = distribution_if_covered(CloudType::kPublic);
    auto median_p75 = [](const std::optional<UtilizationDistribution>& d) {
      return d ? format_double(stats::quantile(d->weekly.p75, 0.5), 2) : "-";
    };
    auto p50_swing = [](const std::optional<UtilizationDistribution>& d) {
      if (!d) return std::string("-");
      double lo = 1e9, hi = -1e9;
      for (double x : d->daily_p50) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      return format_double(hi - lo, 2);
    };
    md_header(out);
    out << "| median of weekly p75 utilization | " << median_p75(priv)
        << " | " << median_p75(pub) << " |\n";
    out << "| daily p50 swing (work-hours signal) | " << p50_swing(priv)
        << " | " << p50_swing(pub) << " |\n";
    out << "\n";
  }

  out << "## Spatial similarity (Sec. IV-B)\n\n";
  md_header(out);
  md_row(out, "median VM-node utilization correlation",
         v.median_node_correlation.private_value,
         v.median_node_correlation.public_value);
  out << "| region-agnostic share of multi-region services | "
      << format_double(v.private_region_agnostic_share, 2) << " | - |\n\n";

  out << "_Generated by cloudlens; see EXPERIMENTS.md for the paper "
         "comparison._\n";
  return v;
}

}  // namespace cloudlens::analysis
