#include "analysis/lifetime_predictor.h"

#include <algorithm>

#include "analysis/context.h"
#include "analysis/record_stream.h"
#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::analysis {

LifetimePredictor::LifetimePredictor(std::vector<double> lifetimes)
    : sorted_(std::move(lifetimes)) {
  CL_CHECK_MSG(!sorted_.empty(), "lifetime predictor needs samples");
  for (const double l : sorted_) CL_CHECK(l >= 0);
  std::sort(sorted_.begin(), sorted_.end());
}

LifetimePredictor LifetimePredictor::fit(const AnalysisContext& ctx,
                                         CloudType cloud) {
  auto phase = ctx.phase("analysis.lifetime_fit");
  std::vector<double> lifetimes;
  // The predictor sorts its samples, so group order is immaterial.
  for_each_vm_group(ctx.trace(), [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.ended()) continue;
      lifetimes.push_back(static_cast<double>(vm.lifetime()));
    }
  });
  return LifetimePredictor(std::move(lifetimes));
}

LifetimePredictor LifetimePredictor::fit(const TraceStore& trace,
                                         CloudType cloud) {
  return fit(AnalysisContext(trace), cloud);
}

double LifetimePredictor::survival(double age_seconds) const {
  const auto it =
      std::upper_bound(sorted_.begin(), sorted_.end(), age_seconds);
  return static_cast<double>(sorted_.end() - it) /
         static_cast<double>(sorted_.size());
}

double LifetimePredictor::expected_remaining(double age_seconds) const {
  const auto it =
      std::upper_bound(sorted_.begin(), sorted_.end(), age_seconds);
  if (it == sorted_.end()) return age_seconds;  // tail fallback (Lindy)
  double sum = 0;
  for (auto p = it; p != sorted_.end(); ++p) sum += *p - age_seconds;
  return sum / static_cast<double>(sorted_.end() - it);
}

double LifetimePredictor::median_remaining(double age_seconds) const {
  const auto it =
      std::upper_bound(sorted_.begin(), sorted_.end(), age_seconds);
  if (it == sorted_.end()) return age_seconds;
  const std::span<const double> tail(&*it,
                                     static_cast<std::size_t>(
                                         sorted_.end() - it));
  return stats::quantile_sorted(tail, 0.5) - age_seconds;
}

}  // namespace cloudlens::analysis
