// Markdown characterization report.
//
// Renders the full paper-style characterization of a trace — deployment,
// temporal, utilization, and spatial sections plus the four insight
// verdicts — as a single self-contained Markdown document, the shareable
// artifact an operator would attach to a capacity review.
#pragma once

#include <iosfwd>

#include "analysis/insights.h"
#include "common/parallel.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

struct ReportOptions {
  InsightOptions insights;
  /// Title line of the document.
  std::string title = "Cloud workload characterization";
};

/// Write the report to `out`. Returns the computed insight verdicts so
/// callers can also act on them programmatically. The batch passes fan out
/// over the context's ParallelConfig; the report is byte-identical at any
/// thread count (pinned by report_test).
InsightVerdicts write_characterization_report(const AnalysisContext& ctx,
                                              std::ostream& out,
                                              const ReportOptions& options = {});

}  // namespace cloudlens::analysis
