// Markdown characterization report.
//
// Renders the full paper-style characterization of a trace — deployment,
// temporal, utilization, and spatial sections plus the four insight
// verdicts — as a single self-contained Markdown document, the shareable
// artifact an operator would attach to a capacity review.
#pragma once

#include <iosfwd>

#include "analysis/insights.h"

namespace cloudlens::analysis {

struct ReportOptions {
  InsightOptions insights;
  /// Title line of the document.
  std::string title = "Cloud workload characterization";
};

/// Write the report to `out`. Returns the computed insight verdicts so
/// callers can also act on them programmatically.
InsightVerdicts write_characterization_report(const TraceStore& trace,
                                              std::ostream& out,
                                              const ReportOptions& options = {});

}  // namespace cloudlens::analysis
