// Markdown characterization report.
//
// Renders the full paper-style characterization of a trace — deployment,
// temporal, utilization, and spatial sections plus the four insight
// verdicts — as a single self-contained Markdown document, the shareable
// artifact an operator would attach to a capacity review.
#pragma once

#include <iosfwd>

#include "analysis/insights.h"
#include "common/parallel.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

struct ReportOptions {
  InsightOptions insights;
  /// Title line of the document.
  std::string title = "Cloud workload characterization";
  /// Fan-out for the batch passes the report runs, honoured by the
  /// `(trace, out, options)` spelling. Historically there was no way to
  /// hand the report a thread count at all — the classifier and
  /// correlation passes always ran at the default — so callers tuning
  /// parallelism silently got the wrong knob. The AnalysisContext overload
  /// ignores this field in favour of the context's own ParallelConfig.
  ParallelConfig parallel = {};
};

/// Write the report to `out`. Returns the computed insight verdicts so
/// callers can also act on them programmatically. The report is
/// byte-identical at any thread count (pinned by report_test).
InsightVerdicts write_characterization_report(const AnalysisContext& ctx,
                                              std::ostream& out,
                                              const ReportOptions& options = {});

/// Deprecated spelling: forwards with AnalysisContext(trace,
/// options.parallel).
InsightVerdicts write_characterization_report(const TraceStore& trace,
                                              std::ostream& out,
                                              const ReportOptions& options = {});

}  // namespace cloudlens::analysis
