#include "analysis/classifier.h"

#include <vector>

#include "stats/descriptive.h"
#include "stats/periodicity.h"

namespace cloudlens::analysis {

std::string_view to_string(UtilizationClass c) {
  switch (c) {
    case UtilizationClass::kDiurnal: return "diurnal";
    case UtilizationClass::kStable: return "stable";
    case UtilizationClass::kIrregular: return "irregular";
    default: return "hourly-peak";
  }
}

UtilizationClass classify(const stats::TimeSeries& utilization,
                          const ClassifierOptions& options) {
  const double sd = stats::stddev(utilization.values());
  if (sd <= options.stable_stddev_max) return UtilizationClass::kStable;

  // Hourly-peak is tested before diurnal: it is "a special diurnal pattern"
  // (its daytime envelope also produces 24h periodicity), so the 1h test
  // must take precedence.
  if (stats::periodicity_score(utilization, kHour) >= options.hourly_score_min)
    return UtilizationClass::kHourlyPeak;

  if (stats::periodicity_score(utilization, kDay) >= options.diurnal_score_min)
    return UtilizationClass::kDiurnal;

  return UtilizationClass::kIrregular;
}

PatternShares classify_population(const TraceStore& trace, CloudType cloud,
                                  std::size_t max_vms,
                                  const ClassifierOptions& options,
                                  const ParallelConfig& parallel) {
  const TimeGrid& grid = trace.telemetry_grid();

  std::vector<VmId> candidates;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.covers(grid) || !vm.utilization) continue;
    candidates.push_back(vm.id);
  }

  // Deterministic stride subsampling keeps results reproducible.
  std::size_t stride = 1;
  if (max_vms > 0 && candidates.size() > max_vms)
    stride = candidates.size() / max_vms;

  const std::size_t sampled =
      candidates.empty() ? 0 : (candidates.size() + stride - 1) / stride;

  // Hot path: each strided VM evaluates its utilization model over the
  // whole grid and runs the ACF/periodicity tests. Per-VM labels land in
  // independent slots, so the fan-out is thread-count-invariant; the tally
  // below walks them in candidate order.
  const auto labels = parallel_map<UtilizationClass>(
      sampled,
      [&](std::size_t k) {
        const auto series =
            trace.vm_utilization(candidates[k * stride], grid);
        return classify(series, options);
      },
      parallel);

  PatternShares shares;
  for (const UtilizationClass label : labels) {
    switch (label) {
      case UtilizationClass::kDiurnal: shares.diurnal += 1; break;
      case UtilizationClass::kStable: shares.stable += 1; break;
      case UtilizationClass::kIrregular: shares.irregular += 1; break;
      case UtilizationClass::kHourlyPeak: shares.hourly_peak += 1; break;
    }
    ++shares.classified;
  }
  if (shares.classified > 0) {
    const auto n = static_cast<double>(shares.classified);
    shares.diurnal /= n;
    shares.stable /= n;
    shares.irregular /= n;
    shares.hourly_peak /= n;
  }
  return shares;
}

}  // namespace cloudlens::analysis
