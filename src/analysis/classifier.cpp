#include "analysis/classifier.h"

#include <vector>

#include "analysis/context.h"
#include "analysis/record_stream.h"
#include "analysis/shard_stream.h"
#include "cloudsim/population.h"
#include "cloudsim/shard.h"
#include "cloudsim/telemetry_panel.h"
#include "stats/descriptive.h"
#include "stats/fft.h"
#include "stats/periodicity.h"

namespace cloudlens::analysis {
namespace {

/// Periodicity cascade shared by both classify overloads (runs only when
/// the series is not stable). The ACF — the expensive part, one FFT round
/// trip — is computed once and shared by both period probes; scoring it per
/// candidate is bit-identical to scoring each period from scratch.
UtilizationClass classify_periodic(std::span<const double> utilization,
                                   SimDuration step,
                                   const ClassifierOptions& options) {
  const auto acf = stats::autocorrelation(utilization);

  // Hourly-peak is tested before diurnal: it is "a special diurnal pattern"
  // (its daytime envelope also produces 24h periodicity), so the 1h test
  // must take precedence.
  if (stats::periodicity_score_acf(acf, step, kHour) >=
      options.hourly_score_min)
    return UtilizationClass::kHourlyPeak;

  if (stats::periodicity_score_acf(acf, step, kDay) >=
      options.diurnal_score_min)
    return UtilizationClass::kDiurnal;

  return UtilizationClass::kIrregular;
}

}  // namespace

std::string_view to_string(UtilizationClass c) {
  switch (c) {
    case UtilizationClass::kDiurnal: return "diurnal";
    case UtilizationClass::kStable: return "stable";
    case UtilizationClass::kIrregular: return "irregular";
    default: return "hourly-peak";
  }
}

UtilizationClass classify(const stats::TimeSeries& utilization,
                          const ClassifierOptions& options) {
  const double sd = stats::stddev(utilization.values());
  if (sd <= options.stable_stddev_max) return UtilizationClass::kStable;
  return classify_periodic(utilization.values(), utilization.grid().step,
                           options);
}

UtilizationClass classify(std::span<const double> utilization,
                          const TimeGrid& grid,
                          const ClassifierOptions& options) {
  const double sd = stats::stddev(utilization);
  if (sd <= options.stable_stddev_max) return UtilizationClass::kStable;
  return classify_periodic(utilization, grid.step, options);
}

PatternShares classify_population(const AnalysisContext& ctx, CloudType cloud,
                                  std::size_t max_vms,
                                  const ClassifierOptions& options) {
  auto phase = ctx.phase("analysis.classify_population");
  const TraceStore& trace = ctx.trace();
  const ParallelConfig& parallel = ctx.parallel();
  const TimeGrid& grid = trace.telemetry_grid();
  // Opt into the columnar telemetry cache; built serially here, before the
  // fan-out, so workers only ever read it.
  const TelemetryPanel* panel = trace.telemetry_panel();

  const std::vector<VmId> candidates =
      collect_vm_ids(trace, [&](const VmRecord& vm) {
        return vm.cloud == cloud && vm.covers(grid) &&
               vm.utilization != nullptr;
      });

  // Deterministic stride subsampling keeps results reproducible.
  std::size_t stride = 1;
  if (max_vms > 0 && candidates.size() > max_vms)
    stride = candidates.size() / max_vms;

  const std::size_t sampled =
      candidates.empty() ? 0 : (candidates.size() + stride - 1) / stride;

  // Hot path: each strided VM pulls its panel row (or evaluates it once
  // into a scratch buffer when the panel is off) and runs the
  // ACF/periodicity tests. Per-VM labels land in independent slots, so the
  // fan-out is thread-count-invariant; the tally below walks them in
  // candidate order.
  std::vector<UtilizationClass> labels;
  const TelemetryShardStore* shards = trace.telemetry_shards();
  if (shards != nullptr) {
    // Out-of-core mode: same per-VM classify kernel, streamed shard by
    // shard with slot-per-VM outputs — identical labels, bounded RSS.
    labels.resize(sampled, UtilizationClass::kStable);
    stream_by_shard(
        *shards, sampled,
        [&](std::size_t k) { return shards->shard_of_vm(candidates[k * stride]); },
        [&](std::size_t k) {
          labels[k] =
              classify(shards->row(candidates[k * stride]), grid, options);
        },
        parallel);
  } else if (const PopulationShardStore* pop = trace.population_shards();
             pop != nullptr) {
    // Population-sharded mode: scratch rows (no panel exists), grouped by
    // the record shard so each pages in once — identical labels.
    labels.resize(sampled, UtilizationClass::kStable);
    stream_by_shard(
        *pop, sampled,
        [&](std::size_t k) { return pop->shard_of_vm(candidates[k * stride]); },
        [&](std::size_t k) {
          std::vector<double> scratch;
          const std::span<const double> row = vm_telemetry_row(
              trace, nullptr, candidates[k * stride], grid, scratch);
          labels[k] = classify(row, grid, options);
        },
        parallel);
  } else {
    labels = parallel_map<UtilizationClass>(
        sampled,
        [&](std::size_t k) {
          std::vector<double> scratch;
          const std::span<const double> row =
              vm_telemetry_row(trace, panel, candidates[k * stride], grid,
                               scratch);
          return classify(row, grid, options);
        },
        parallel);
  }

  PatternShares shares;
  for (const UtilizationClass label : labels) {
    switch (label) {
      case UtilizationClass::kDiurnal: shares.diurnal += 1; break;
      case UtilizationClass::kStable: shares.stable += 1; break;
      case UtilizationClass::kIrregular: shares.irregular += 1; break;
      case UtilizationClass::kHourlyPeak: shares.hourly_peak += 1; break;
    }
    ++shares.classified;
  }
  if (shares.classified > 0) {
    const auto n = static_cast<double>(shares.classified);
    shares.diurnal /= n;
    shares.stable /= n;
    shares.irregular /= n;
    shares.hourly_peak /= n;
  }
  ctx.count(obs::Counter::kAnalysisVmsClassified, shares.classified);
  return shares;
}

}  // namespace cloudlens::analysis
