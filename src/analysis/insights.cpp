#include "analysis/insights.h"

#include <sstream>

#include "analysis/context.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "common/table.h"
#include "stats/descriptive.h"

namespace cloudlens::analysis {
namespace {

double median_or_zero(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  return stats::quantile(xs, 0.5);
}

}  // namespace

InsightVerdicts evaluate_insights(const AnalysisContext& ctx,
                                  const InsightOptions& options) {
  auto top = ctx.phase("analysis.evaluate_insights");
  InsightVerdicts v;

  // Insight 1 — deployment size & subscription density.
  v.median_vms_per_subscription.private_value = median_or_zero(
      vms_per_subscription(ctx, CloudType::kPrivate, options.snapshot));
  v.median_vms_per_subscription.public_value = median_or_zero(
      vms_per_subscription(ctx, CloudType::kPublic, options.snapshot));
  v.median_subscriptions_per_cluster.private_value = median_or_zero(
      subscriptions_per_cluster(ctx, CloudType::kPrivate, options.snapshot));
  v.median_subscriptions_per_cluster.public_value = median_or_zero(
      subscriptions_per_cluster(ctx, CloudType::kPublic, options.snapshot));
  v.insight1 =
      v.median_vms_per_subscription.private_value >
          3 * v.median_vms_per_subscription.public_value &&
      v.median_subscriptions_per_cluster.public_value >
          3 * std::max(1.0, v.median_subscriptions_per_cluster.private_value);

  // Insight 2 — bursty private churn vs regular public churn.
  v.median_creation_cv.private_value =
      median_or_zero(creation_cv_by_region(ctx, CloudType::kPrivate));
  v.median_creation_cv.public_value =
      median_or_zero(creation_cv_by_region(ctx, CloudType::kPublic));
  v.shortest_lifetime_share.private_value =
      shortest_bin_share(vm_lifetimes(ctx, CloudType::kPrivate));
  v.shortest_lifetime_share.public_value =
      shortest_bin_share(vm_lifetimes(ctx, CloudType::kPublic));
  v.insight2 = v.median_creation_cv.private_value >
                   1.3 * v.median_creation_cv.public_value &&
               v.shortest_lifetime_share.public_value >
                   v.shortest_lifetime_share.private_value + 0.1;

  // Insight 3 — pattern-mix contrast.
  v.private_mix = classify_population(ctx, CloudType::kPrivate,
                                      options.classify_max_vms);
  v.public_mix = classify_population(ctx, CloudType::kPublic,
                                     options.classify_max_vms);
  v.insight3 = v.private_mix.diurnal > v.private_mix.stable &&
               v.private_mix.diurnal > 1.2 * v.public_mix.diurnal &&
               v.public_mix.stable > v.private_mix.stable;

  // Insight 4 — node similarity + region-agnosticism.
  {
    auto priv = node_vm_correlations(ctx, CloudType::kPrivate,
                                     options.correlation_max_nodes);
    auto pub = node_vm_correlations(ctx, CloudType::kPublic,
                                    options.correlation_max_nodes);
    v.median_node_correlation.private_value = median_or_zero(std::move(priv));
    v.median_node_correlation.public_value = median_or_zero(std::move(pub));
    const auto verdicts = detect_region_agnostic_services(
        ctx, CloudType::kPrivate, options.region_agnostic_correlation);
    std::size_t agnostic = 0;
    for (const auto& r : verdicts) {
      if (r.region_agnostic) ++agnostic;
    }
    v.private_region_agnostic_share =
        verdicts.empty() ? 0.0
                         : double(agnostic) / double(verdicts.size());
    v.insight4 = v.median_node_correlation.private_value >
                     v.median_node_correlation.public_value + 0.2 &&
                 v.private_region_agnostic_share >= 0.4;
  }
  return v;
}

std::string render_insights(const InsightVerdicts& v) {
  std::ostringstream os;
  auto verdict = [](bool ok) { return ok ? "HOLDS" : "NOT OBSERVED"; };

  os << "Insight 1 (" << verdict(v.insight1)
     << "): private deployments larger; public clusters denser in "
        "subscriptions\n";
  TextTable t1({"metric", "private", "public"});
  t1.row()
      .add("median VMs per subscription")
      .add(v.median_vms_per_subscription.private_value, 1)
      .add(v.median_vms_per_subscription.public_value, 1);
  t1.row()
      .add("median subscriptions per cluster")
      .add(v.median_subscriptions_per_cluster.private_value, 1)
      .add(v.median_subscriptions_per_cluster.public_value, 1);
  os << t1.to_string();

  os << "\nInsight 2 (" << verdict(v.insight2)
     << "): private churn bursty; public churn diurnal and short-lived\n";
  TextTable t2({"metric", "private", "public"});
  t2.row()
      .add("median CV of hourly creations")
      .add(v.median_creation_cv.private_value, 2)
      .add(v.median_creation_cv.public_value, 2);
  t2.row()
      .add("share of lifetimes < 30 min")
      .add(v.shortest_lifetime_share.private_value, 2)
      .add(v.shortest_lifetime_share.public_value, 2);
  os << t2.to_string();

  os << "\nInsight 3 (" << verdict(v.insight3)
     << "): utilization pattern mixes differ\n";
  TextTable t3({"pattern", "private", "public"});
  t3.row().add("diurnal").add(v.private_mix.diurnal, 2).add(
      v.public_mix.diurnal, 2);
  t3.row().add("stable").add(v.private_mix.stable, 2).add(v.public_mix.stable,
                                                          2);
  t3.row()
      .add("irregular")
      .add(v.private_mix.irregular, 2)
      .add(v.public_mix.irregular, 2);
  t3.row()
      .add("hourly-peak")
      .add(v.private_mix.hourly_peak, 2)
      .add(v.public_mix.hourly_peak, 2);
  os << t3.to_string();

  os << "\nInsight 4 (" << verdict(v.insight4)
     << "): private workloads homogeneous per node and region-agnostic\n";
  TextTable t4({"metric", "private", "public"});
  t4.row()
      .add("median VM-node correlation")
      .add(v.median_node_correlation.private_value, 2)
      .add(v.median_node_correlation.public_value, 2);
  t4.row()
      .add("region-agnostic service share")
      .add(v.private_region_agnostic_share, 2)
      .add("-");
  os << t4.to_string();
  return os.str();
}

}  // namespace cloudlens::analysis
