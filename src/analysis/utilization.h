// Utilization distribution characterization (Sec. IV-A, Fig. 6):
// per-timepoint percentile bands over a VM population, weekly and daily.
#pragma once

#include <vector>

#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "stats/series.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

struct UtilizationDistribution {
  /// Percentile bands per hour over the full window (Fig. 6(a,b));
  /// series are hourly means of the 5-minute telemetry.
  stats::PercentileBands weekly;
  /// Percentiles per hour-of-day, across (VM × day) hourly means
  /// (Fig. 6(c,d)); index = hour of day 0..23.
  std::vector<double> daily_p25, daily_p50, daily_p75, daily_p95;
  std::size_t vms_used = 0;
};

/// Computes the distribution over VMs of `cloud` alive the entire window.
/// `max_vms` caps the population by deterministic stride subsampling.
/// The per-VM hourly roll-ups and the 24 hour-of-day percentile buckets
/// fan out over the context's ParallelConfig; merging is per-slot, so the
/// result is bit-identical at any thread count.
UtilizationDistribution utilization_distribution(
    const AnalysisContext& ctx, CloudType cloud, std::size_t max_vms = 1500);

/// Hourly used-core demand of one region: sum over VMs of
/// utilization × cores. With `max_vms` > 0 the population is stride-sampled
/// and the result rescaled, so the series stays an unbiased estimate of the
/// full demand. Pass an invalid RegionId to aggregate all regions.
/// Accumulation uses parallel_reduce's fixed chunk grid, so the summation
/// order — and with it every floating-point bit — is a function of the
/// population only, never of the thread count.
stats::TimeSeries region_used_cores_hourly(const AnalysisContext& ctx,
                                           CloudType cloud, RegionId region,
                                           std::size_t max_vms = 3000);

/// Mean utilization of one VM over the part of the telemetry window it was
/// alive (0 when never alive within the window or no telemetry).
double vm_mean_utilization(const AnalysisContext& ctx, VmId id);

}  // namespace cloudlens::analysis
