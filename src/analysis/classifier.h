// Utilization pattern classifier (Sec. IV-A, Fig. 5).
//
// Classifies a VM's CPU-utilization series into the paper's four types:
//   stable       — standard deviation below a threshold (paper: "extracted
//                  by restricting the standard deviation");
//   hourly-peak  — significant periodicity at one hour (period detection of
//                  ref [18] with period = 1h); a special diurnal pattern;
//   diurnal      — significant periodicity at 24 hours;
//   irregular    — everything else.
#pragma once

#include <string_view>

#include "cloudsim/trace.h"
#include "common/parallel.h"
#include "stats/series.h"

namespace cloudlens {
class AnalysisContext;  // analysis/context.h
}

namespace cloudlens::analysis {

enum class UtilizationClass { kDiurnal, kStable, kIrregular, kHourlyPeak };

std::string_view to_string(UtilizationClass c);

struct ClassifierOptions {
  /// Maximum standard deviation for the stable class.
  double stable_stddev_max = 0.045;
  /// Minimum ACF-based periodicity score at 1 hour for hourly-peak.
  double hourly_score_min = 0.18;
  /// Minimum ACF-based periodicity score at 24 hours for diurnal.
  double diurnal_score_min = 0.30;
};

/// Classify one utilization series (5-minute samples over >= 2 days
/// recommended; shorter series can only be separated stably vs. not).
UtilizationClass classify(const stats::TimeSeries& utilization,
                          const ClassifierOptions& options = {});

/// Span overload for contiguous telemetry-panel rows: identical decisions,
/// no TimeSeries materialization (the stable test runs on the raw span and
/// the periodicity cascade scores one shared ACF). `grid` describes the
/// row's sampling (grid.count is ignored in favour of utilization.size()).
UtilizationClass classify(std::span<const double> utilization,
                          const TimeGrid& grid,
                          const ClassifierOptions& options = {});

/// Population shares of the four classes (Fig. 5(d)) over VMs of one cloud
/// that were alive for the entire telemetry window. `max_vms` caps the
/// sample (deterministic stride subsampling) to bound runtime; 0 = all.
struct PatternShares {
  double diurnal = 0, stable = 0, irregular = 0, hourly_peak = 0;
  std::size_t classified = 0;
};

/// Per-VM classification fans out over the context's ParallelConfig
/// (labels land in per-candidate slots, tallied in candidate order), so the
/// result is bit-identical at any thread count — `threads = 1` runs the
/// plain serial loop. Records one "analysis.classify_population" phase and
/// `analysis.vms_classified` against the context's (write-only) metrics.
PatternShares classify_population(const AnalysisContext& ctx, CloudType cloud,
                                  std::size_t max_vms = 2000,
                                  const ClassifierOptions& options = {});

}  // namespace cloudlens::analysis
