#include "analysis/temporal.h"

#include <algorithm>

#include "analysis/context.h"
#include "analysis/record_stream.h"
#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::analysis {
namespace {

bool in_region(const VmRecord& vm, RegionId region) {
  return !region.valid() || vm.region == region;
}

// Raw sweeps, shared by the instrumented AnalysisContext entry points
// below (creation_cv_by_region reuses creations_impl directly so it opens
// exactly one phase, not one per region).

std::vector<double> lifetimes_impl(const TraceStore& trace, CloudType cloud,
                                   SimTime window_start, SimTime window_end) {
  std::vector<double> out;
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !vm.ended()) continue;
      if (vm.created < window_start || vm.deleted > window_end) continue;
      out.push_back(static_cast<double>(vm.lifetime()));
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

stats::TimeSeries creations_impl(const TraceStore& trace, CloudType cloud,
                                 RegionId region, const TimeGrid& grid) {
  stats::TimeSeries out(grid);
  // Integer counts: bin increments are exact, so group order is moot.
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !in_region(vm, region)) continue;
      if (!grid.contains(vm.created)) continue;
      out[grid.index_of(vm.created)] += 1.0;
    }
  });
  return out;
}

}  // namespace

std::vector<double> vm_lifetimes(const AnalysisContext& ctx, CloudType cloud,
                                 SimTime window_start, SimTime window_end) {
  auto phase = ctx.phase("analysis.vm_lifetimes");
  return lifetimes_impl(ctx.trace(), cloud, window_start, window_end);
}

double shortest_bin_share(const std::vector<double>& lifetimes,
                          double bin_edge_seconds) {
  if (lifetimes.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : lifetimes) {
    if (x < bin_edge_seconds) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(lifetimes.size());
}

stats::TimeSeries vm_count_per_hour(const AnalysisContext& ctx,
                                    CloudType cloud, RegionId region,
                                    const TimeGrid& grid) {
  auto phase = ctx.phase("analysis.vm_count_per_hour");
  const TraceStore& trace = ctx.trace();
  stats::TimeSeries out(grid);
  // Sweep-line over create/delete events clamped to the grid.
  std::vector<std::pair<SimTime, int>> events;
  std::int64_t base = 0;  // VMs alive before the grid starts
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !in_region(vm, region)) continue;
      if (vm.created < grid.start) {
        if (vm.deleted > grid.start) ++base;
      } else if (vm.created < grid.end()) {
        events.emplace_back(vm.created, +1);
      }
      if (vm.deleted > grid.start && vm.deleted < grid.end() &&
          vm.created < grid.end()) {
        events.emplace_back(vm.deleted, -1);
      }
    }
  });
  std::sort(events.begin(), events.end());

  std::int64_t alive = base;
  std::size_t e = 0;
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    while (e < events.size() && events[e].first <= t) {
      alive += events[e].second;
      ++e;
    }
    out[i] = static_cast<double>(alive);
  }
  return out;
}

stats::TimeSeries creations_per_hour(const AnalysisContext& ctx,
                                     CloudType cloud, RegionId region,
                                     const TimeGrid& grid) {
  auto phase = ctx.phase("analysis.creations_per_hour");
  return creations_impl(ctx.trace(), cloud, region, grid);
}

stats::TimeSeries removals_per_hour(const AnalysisContext& ctx,
                                    CloudType cloud, RegionId region,
                                    const TimeGrid& grid) {
  auto phase = ctx.phase("analysis.removals_per_hour");
  const TraceStore& trace = ctx.trace();
  stats::TimeSeries out(grid);
  for_each_vm_group(trace, [&](std::span<const VmRecord> vms) {
    for (const auto& vm : vms) {
      if (vm.cloud != cloud || !in_region(vm, region) || !vm.ended()) {
        continue;
      }
      if (!grid.contains(vm.deleted)) continue;
      out[grid.index_of(vm.deleted)] += 1.0;
    }
  });
  return out;
}

std::vector<double> creation_cv_by_region(const AnalysisContext& ctx,
                                          CloudType cloud,
                                          const TimeGrid& grid) {
  auto phase = ctx.phase("analysis.creation_cv_by_region");
  const TraceStore& trace = ctx.trace();
  std::vector<double> out;
  for (const auto& region : trace.topology().regions()) {
    const auto series = creations_impl(trace, cloud, region.id, grid);
    if (series.mean() <= 0) continue;
    out.push_back(stats::coefficient_of_variation(series.values()));
  }
  ctx.count(obs::Counter::kAnalysisSeriesRolledUp, out.size());
  return out;
}

}  // namespace cloudlens::analysis
