#include "analysis/utilization.h"

#include <algorithm>

#include "analysis/context.h"
#include "analysis/record_stream.h"
#include "analysis/shard_stream.h"
#include "cloudsim/population.h"
#include "cloudsim/shard.h"
#include "cloudsim/telemetry_panel.h"
#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::analysis {

UtilizationDistribution utilization_distribution(const AnalysisContext& ctx,
                                                 CloudType cloud,
                                                 std::size_t max_vms) {
  auto phase = ctx.phase("analysis.utilization_distribution");
  const TraceStore& trace = ctx.trace();
  const ParallelConfig& parallel = ctx.parallel();
  const TimeGrid& grid = trace.telemetry_grid();
  // Opt into the columnar telemetry cache (serial warm-up).
  const TelemetryPanel* panel = trace.telemetry_panel();

  const std::vector<VmId> candidates =
      collect_vm_ids(trace, [&](const VmRecord& vm) {
        return vm.cloud == cloud && vm.covers(grid) &&
               vm.utilization != nullptr;
      });
  std::size_t stride = 1;
  if (max_vms > 0 && candidates.size() > max_vms)
    stride = candidates.size() / max_vms;

  // Hot path #1: per-VM hourly roll-up straight off the panel's hourly
  // companion view (or an identically-computed scratch row when the panel
  // is off). Slot-per-VM fan-out, merged in candidate order.
  const std::size_t sampled =
      candidates.empty() ? 0 : (candidates.size() + stride - 1) / stride;
  CL_CHECK(grid.step > 0 && kHour % grid.step == 0);
  const std::size_t factor = static_cast<std::size_t>(kHour / grid.step);
  const TimeGrid hourly_grid{grid.start, kHour, grid.count / factor};
  std::vector<stats::TimeSeries> hourly;
  const TelemetryShardStore* shards = trace.telemetry_shards();
  if (shards != nullptr) {
    // Out-of-core mode: stream the roll-up shard by shard (bounded RSS).
    // Each sampled VM still fills its own slot k, so the assembled vector
    // is identical to the resident path, bit for bit.
    hourly.resize(sampled);
    stream_by_shard(
        *shards, sampled,
        [&](std::size_t k) { return shards->shard_of_vm(candidates[k * stride]); },
        [&](std::size_t k) {
          const std::span<const double> row =
              shards->hourly_row(candidates[k * stride]);
          hourly[k] = stats::TimeSeries(
              hourly_grid, std::vector<double>(row.begin(), row.end()));
        },
        parallel);
  } else if (const PopulationShardStore* pop = trace.population_shards();
             pop != nullptr) {
    // Population-sharded mode: no panel exists, so rows come from the
    // scratch fill (identical bits). Group by the record shard so each
    // shard pages in once and evicts at the group boundary.
    hourly.resize(sampled);
    stream_by_shard(
        *pop, sampled,
        [&](std::size_t k) { return pop->shard_of_vm(candidates[k * stride]); },
        [&](std::size_t k) {
          std::vector<double> row_scratch, hourly_scratch;
          const std::span<const double> row = vm_hourly_row(
              trace, nullptr, candidates[k * stride], grid, row_scratch,
              hourly_scratch);
          hourly[k] = stats::TimeSeries(
              hourly_grid, std::vector<double>(row.begin(), row.end()));
        },
        parallel);
  } else {
    hourly = parallel_map<stats::TimeSeries>(
        sampled,
        [&](std::size_t k) {
          std::vector<double> row_scratch, hourly_scratch;
          const std::span<const double> row = vm_hourly_row(
              trace, panel, candidates[k * stride], grid, row_scratch,
              hourly_scratch);
          return stats::TimeSeries(
              hourly_grid, std::vector<double>(row.begin(), row.end()));
        },
        parallel);
  }

  UtilizationDistribution out;
  out.vms_used = hourly.size();
  CL_CHECK_MSG(!hourly.empty(),
               "no VM covers the telemetry window for this cloud");
  out.weekly = stats::percentile_bands(hourly);

  // Daily distribution: pool every (VM, day, hour) hourly mean into its
  // hour-of-day bucket, then take percentiles per bucket.
  std::vector<std::vector<double>> buckets(24);
  for (const auto& series : hourly) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      buckets[hour_of_day(series.grid().at(i))].push_back(series[i]);
    }
  }
  out.daily_p25.resize(24);
  out.daily_p50.resize(24);
  out.daily_p75.resize(24);
  out.daily_p95.resize(24);
  // Hot path #2: each hour-of-day bucket sorts and extracts its
  // percentiles independently (distinct output slots per hour).
  parallel_for(
      24,
      [&](std::size_t h) {
        auto& b = buckets[h];
        CL_CHECK(!b.empty());
        std::sort(b.begin(), b.end());
        out.daily_p25[h] = stats::quantile_sorted(b, 0.25);
        out.daily_p50[h] = stats::quantile_sorted(b, 0.50);
        out.daily_p75[h] = stats::quantile_sorted(b, 0.75);
        out.daily_p95[h] = stats::quantile_sorted(b, 0.95);
      },
      parallel);
  ctx.count(obs::Counter::kAnalysisSeriesRolledUp, out.vms_used);
  return out;
}

stats::TimeSeries region_used_cores_hourly(const AnalysisContext& ctx,
                                           CloudType cloud, RegionId region,
                                           std::size_t max_vms) {
  auto phase = ctx.phase("analysis.region_used_cores_hourly");
  const TraceStore& trace = ctx.trace();
  const ParallelConfig& parallel = ctx.parallel();
  const TimeGrid& grid = trace.telemetry_grid();
  const TelemetryPanel* panel = trace.telemetry_panel();
  const std::vector<VmId> candidates =
      collect_vm_ids(trace, [&](const VmRecord& vm) {
        return vm.cloud == cloud && vm.utilization != nullptr &&
               (!region.valid() || vm.region == region);
      });
  stats::TimeSeries used(grid);
  if (candidates.empty()) return used.hourly_mean();

  std::size_t stride = 1;
  if (max_vms > 0 && candidates.size() > max_vms)
    stride = candidates.size() / max_vms;
  const std::size_t sampled = (candidates.size() + stride - 1) / stride;

  // Chunked deterministic reduction: each fixed chunk of the strided
  // population accumulates its own series; partials merge in chunk order,
  // so the floating-point sum is reproducible at any thread count. Panel
  // rows are zero outside a VM's life, so the unconditional accumulation
  // is bit-identical to the old alive-gated one.
  used = parallel_reduce<stats::TimeSeries>(
      sampled, stats::TimeSeries(grid),
      [&](stats::TimeSeries& acc, std::size_t k) {
        const auto& vm = trace.vm(candidates[k * stride]);
        std::vector<double> scratch;
        const std::span<const double> row =
            vm_telemetry_row(trace, panel, vm.id, grid, scratch);
        auto& values = acc.mutable_values();
        for (std::size_t t = 0; t < grid.count; ++t)
          values[t] += vm.cores * row[t];
      },
      [](stats::TimeSeries& total, const stats::TimeSeries& partial) {
        total.add(partial);
      },
      parallel);
  // The fixed-chunk partial order is what makes the sum reproducible, so
  // the reduce cannot be regrouped by shard; shards paged in along the way
  // are released here instead (the pool has drained: a serial point).
  if (const PopulationShardStore* pop = trace.population_shards();
      pop != nullptr) {
    pop->evict_over_budget();
  }

  // Rescale the stride sample back to the full population.
  used.scale(static_cast<double>(candidates.size()) /
             static_cast<double>(sampled));
  ctx.count(obs::Counter::kAnalysisSeriesRolledUp, sampled);
  return used.hourly_mean();
}

double vm_mean_utilization(const AnalysisContext& ctx, VmId id) {
  const TraceStore& trace = ctx.trace();
  const TimeGrid& grid = trace.telemetry_grid();
  const auto& vm = trace.vm(id);
  if (!vm.utilization) return 0.0;
  // One panel row read (or one batched evaluation) instead of a per-tick
  // virtual dispatch loop. The mean runs over alive ticks only, exactly as
  // before; alive ticks are the non-gated window of the row.
  const TelemetryPanel* panel = trace.telemetry_panel();
  std::vector<double> scratch;
  const std::span<const double> row =
      vm_telemetry_row(trace, panel, id, grid, scratch);
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t t = 0; t < grid.count; ++t) {
    if (!vm.alive_at(grid.at(t))) continue;
    sum += row[t];
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace cloudlens::analysis
