#include "policies/deferral.h"

#include <algorithm>
#include <limits>

#include "analysis/context.h"
#include "analysis/utilization.h"
#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::policies {

DeferralReport schedule_deferrable(const TraceStore& trace, CloudType cloud,
                                   RegionId region,
                                   std::vector<DeferrableJob> jobs,
                                   const DeferralOptions& options) {
  DeferralReport report;
  report.demand_before = analysis::region_used_cores_hourly(
      AnalysisContext(trace), cloud, region, options.max_vms);
  report.demand_after = report.demand_before;
  const TimeGrid& grid = report.demand_after.grid();
  CL_CHECK(grid.count > 0);

  // Largest jobs first: they are hardest to place without raising the peak.
  std::sort(jobs.begin(), jobs.end(),
            [](const DeferrableJob& a, const DeferrableJob& b) {
              return a.cores * double(a.duration) > b.cores * double(b.duration);
            });

  for (const auto& job : jobs) {
    CL_CHECK(job.duration > 0 && job.cores > 0);
    const auto len = static_cast<std::size_t>(
        (job.duration + grid.step - 1) / grid.step);  // ceil to whole hours
    if (len > grid.count) {
      ++report.jobs_rejected;
      continue;
    }

    // Feasible start slots: [release, deadline - duration].
    std::size_t best_start = grid.count;
    double best_peak = std::numeric_limits<double>::infinity();
    for (std::size_t s = 0; s + len <= grid.count; ++s) {
      const SimTime start = grid.at(s);
      if (start < job.release) continue;
      if (start + job.duration > job.deadline) break;
      double peak = 0;
      for (std::size_t i = s; i < s + len; ++i)
        peak = std::max(peak, report.demand_after[i] + job.cores);
      if (peak < best_peak) {
        best_peak = peak;
        best_start = s;
      }
    }
    if (best_start == grid.count) {
      ++report.jobs_rejected;
      continue;
    }
    for (std::size_t i = best_start; i < best_start + len; ++i)
      report.demand_after[i] += job.cores;
    ++report.jobs_scheduled;
  }

  auto stats_of = [](const stats::TimeSeries& s, double& peak,
                     double& valley_to_mean) {
    peak = s.max();
    double lo = std::numeric_limits<double>::infinity();
    for (const double v : s.values()) lo = std::min(lo, v);
    const double mean = s.mean();
    valley_to_mean = mean > 0 ? lo / mean : 0;
  };
  stats_of(report.demand_before, report.peak_before,
           report.valley_to_mean_before);
  stats_of(report.demand_after, report.peak_after,
           report.valley_to_mean_after);
  return report;
}

}  // namespace cloudlens::policies
