// Spot capacity market simulation (Sec. III-B implication).
//
// The paper suggests running short-lived public-cloud workloads on spot VMs
// "to reduce cost and improve platform resource utilization, especially
// during valley hours", and motivates the authors' follow-up work on spot
// eviction prediction (ref [15]) and reliable spot/on-demand mixtures
// (Snape, ref [16]). This module simulates that market end to end:
//
//   * the on-demand side is the trace itself — its allocated cores per
//     interval define how much capacity is left for spot;
//   * a synthetic stream of spot jobs arrives; jobs run while spare
//     capacity lasts and are evicted newest-first when on-demand demand
//     rises;
//   * an empirical eviction-risk table (per submission hour) is learned
//     from the simulation, enabling a Snape-style mixture policy that
//     routes risky submissions to on-demand.
#pragma once

#include <array>

#include "cloudsim/trace.h"
#include "stats/series.h"

namespace cloudlens::policies {

struct SpotMarketOptions {
  RegionId region;  ///< invalid = whole cloud
  CloudType cloud = CloudType::kPublic;
  /// Fraction of physical cores never offered to spot (safety headroom).
  double capacity_reserve = 0.05;
  /// Spot job stream.
  double jobs_per_hour = 40;
  SimDuration job_duration = 4 * kHour;
  double job_cores = 4;
  /// Price of a spot core-hour relative to on-demand.
  double spot_price_ratio = 0.30;
  std::uint64_t seed = 11;
};

struct SpotMarketReport {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_evicted = 0;
  std::size_t jobs_rejected = 0;  ///< no capacity at submission
  double eviction_rate = 0;       ///< evicted / admitted
  double spot_core_hours = 0;     ///< successfully served
  /// Share of served spot core-hours inside local valley hours (22-06).
  double valley_share = 0;
  /// Region utilization (allocated/total) without and with spot.
  double utilization_before = 0;
  double utilization_with_spot = 0;
  /// Empirical eviction probability by submission hour-of-day.
  std::array<double, 24> eviction_risk_by_hour{};
  /// Hourly series for plotting: spare capacity and spot usage (cores).
  stats::TimeSeries free_cores;
  stats::TimeSeries spot_cores;
};

SpotMarketReport simulate_spot_market(const TraceStore& trace,
                                      const SpotMarketOptions& options = {});

/// Snape-style comparison: run every job on-demand, every job on spot, or
/// route by predicted eviction risk (jobs submitted at hours whose learned
/// risk exceeds `risk_threshold` go on-demand).
struct MixtureComparison {
  double all_ondemand_cost = 0;    ///< normalized: on-demand core-hour = 1
  double all_spot_cost = 0;        ///< includes rerun cost of evicted work
  double mixture_cost = 0;
  double all_spot_completion = 0;  ///< completed / submitted
  double mixture_completion = 0;
  double risk_threshold = 0;
};

MixtureComparison compare_mixture_policy(const TraceStore& trace,
                                         const SpotMarketOptions& options = {},
                                         double risk_threshold = 0.15);

}  // namespace cloudlens::policies
