#include "policies/preprovision.h"

#include <algorithm>

#include "analysis/classifier.h"
#include "cloudsim/telemetry_panel.h"
#include "common/check.h"

namespace cloudlens::policies {
namespace {

/// Is `t` within the predictive window of a :00/:30 mark?
bool near_mark(SimTime t, SimDuration lead, SimDuration hold) {
  const SimDuration half = kHour / 2;
  const SimTime in_half = ((t % half) + half) % half;
  // Window wraps the mark: [half - lead, half) U [0, hold).
  return in_half >= half - lead || in_half < hold;
}

}  // namespace

PreprovisionReport evaluate_preprovisioning(
    const TraceStore& trace, CloudType cloud,
    const PreprovisionOptions& options) {
  const TimeGrid& grid = trace.telemetry_grid();
  PreprovisionReport report;
  report.demand = stats::TimeSeries(grid);

  // Aggregate demand of hourly-peak VMs, streaming one panel row (or one
  // scratch evaluation when the panel is off) per VM — the row feeds both
  // the classifier and the demand accumulation.
  const TelemetryPanel* panel = trace.telemetry_panel();
  std::vector<double> scratch;
  auto& demand = report.demand.mutable_values();
  std::size_t used = 0;
  for (const auto& vm : trace.vms()) {
    if (options.max_vms > 0 && used >= options.max_vms) break;
    if (vm.cloud != cloud || !vm.covers(grid) || !vm.utilization) continue;
    const std::span<const double> row =
        vm_telemetry_row(trace, panel, vm.id, grid, scratch);
    if (analysis::classify(row, grid) !=
        analysis::UtilizationClass::kHourlyPeak)
      continue;
    ++used;
    for (std::size_t t = 0; t < grid.count; ++t)
      demand[t] += vm.cores * row[t];
  }
  report.vms_used = used;
  CL_CHECK_MSG(used > 0, "no hourly-peak VMs found in this cloud");

  // Reactive controller: trailing average + headroom (lagging by one step).
  const auto window =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   options.trailing_window / grid.step));
  report.reactive_capacity = stats::TimeSeries(grid);
  double excess_sum = 0;
  std::size_t excess_n = 0;
  for (std::size_t t = 0; t < grid.count; ++t) {
    double acc = 0;
    std::size_t n = 0;
    for (std::size_t k = 1; k <= window && k <= t; ++k) {
      acc += report.demand[t - k];
      ++n;
    }
    const double trailing = n ? acc / static_cast<double>(n)
                              : report.demand[t];
    report.reactive_capacity[t] = trailing * (1.0 + options.headroom);
    const double excess = report.demand[t] - trailing;
    if (excess > 0) {
      excess_sum += excess;
      ++excess_n;
    }
  }
  const double buffer =
      options.buffer_scale * (excess_n ? excess_sum / double(excess_n) : 0.0);

  // Predictive controller: reactive + pre-provisioned buffer near marks.
  report.predictive_capacity = report.reactive_capacity;
  for (std::size_t t = 0; t < grid.count; ++t) {
    if (near_mark(grid.at(t), options.pre_lead, options.pre_hold))
      report.predictive_capacity[t] += buffer;
  }

  std::size_t reactive_violations = 0, predictive_violations = 0;
  for (std::size_t t = 0; t < grid.count; ++t) {
    if (report.demand[t] > report.reactive_capacity[t]) ++reactive_violations;
    if (report.demand[t] > report.predictive_capacity[t])
      ++predictive_violations;
  }
  const auto n = static_cast<double>(grid.count);
  report.reactive_violation_rate = double(reactive_violations) / n;
  report.predictive_violation_rate = double(predictive_violations) / n;
  report.reactive_mean_capacity = report.reactive_capacity.mean();
  report.predictive_mean_capacity = report.predictive_capacity.mean();
  return report;
}

}  // namespace cloudlens::policies
