#include "policies/spot_market.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "common/check.h"
#include "common/rng.h"

namespace cloudlens::policies {
namespace {

/// On-demand allocated cores per hour for the scoped region/cloud.
stats::TimeSeries ondemand_cores(const TraceStore& trace,
                                 const SpotMarketOptions& options,
                                 const TimeGrid& grid) {
  stats::TimeSeries series(grid);
  std::vector<std::pair<SimTime, double>> events;
  double base = 0;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != options.cloud) continue;
    if (options.region.valid() && vm.region != options.region) continue;
    if (vm.created < grid.start) {
      if (vm.deleted > grid.start) base += vm.cores;
    } else if (vm.created < grid.end()) {
      events.emplace_back(vm.created, vm.cores);
    }
    if (vm.deleted > grid.start && vm.deleted < grid.end())
      events.emplace_back(vm.deleted, -vm.cores);
  }
  std::sort(events.begin(), events.end());
  double level = base;
  std::size_t e = 0;
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    while (e < events.size() && events[e].first <= t) level += events[e++].second;
    series[i] = level;
  }
  return series;
}

double scoped_capacity(const TraceStore& trace,
                       const SpotMarketOptions& options) {
  const Topology& topo = trace.topology();
  if (options.region.valid())
    return topo.region_total_cores(options.region, options.cloud);
  double total = 0;
  for (const auto& region : topo.regions())
    total += topo.region_total_cores(region.id, options.cloud);
  return total;
}

double local_tz(const TraceStore& trace, const SpotMarketOptions& options) {
  if (!options.region.valid()) return 0.0;
  return trace.topology().region(options.region).tz_offset_hours;
}

bool in_valley(SimTime t, double tz) {
  const int h = hour_of_day(t + static_cast<SimTime>(tz * double(kHour)));
  return h >= 22 || h < 6;
}

struct SpotJob {
  SimTime submitted;
  SimDuration served = 0;
};

/// Core market loop. `use_spot` decides per submission whether the job
/// enters the spot pool (false = routed to on-demand; tracked separately).
struct MarketOutcome {
  SpotMarketReport report;
  std::size_t routed_ondemand = 0;
};

MarketOutcome run_market(const TraceStore& trace,
                         const SpotMarketOptions& options,
                         const std::function<bool(SimTime)>& use_spot) {
  CL_CHECK(options.jobs_per_hour >= 0 && options.job_cores > 0);
  CL_CHECK(options.job_duration > 0);
  CL_CHECK(options.capacity_reserve >= 0 && options.capacity_reserve < 1);

  const TimeGrid grid = week_hourly_grid();
  MarketOutcome outcome;
  SpotMarketReport& report = outcome.report;
  report.free_cores = stats::TimeSeries(grid);
  report.spot_cores = stats::TimeSeries(grid);

  const auto ondemand = ondemand_cores(trace, options, grid);
  const double capacity = scoped_capacity(trace, options);
  CL_CHECK_MSG(capacity > 0, "no capacity in the scoped region/cloud");
  const double tz = local_tz(trace, options);

  // Pre-draw arrivals (homogeneous Poisson per hour).
  Rng rng(options.seed);
  std::vector<SimTime> arrivals;
  for (std::size_t i = 0; i < grid.count; ++i) {
    const auto n = rng.poisson(options.jobs_per_hour);
    for (std::uint64_t k = 0; k < n; ++k)
      arrivals.push_back(grid.at(i) +
                         static_cast<SimTime>(rng.uniform() * double(kHour)));
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::array<std::size_t, 24> admitted_by_hour{};
  std::array<std::size_t, 24> evicted_by_hour{};
  std::vector<SpotJob> running;  // back = newest (evicted first)
  std::size_t next_arrival = 0;
  double valley_core_hours = 0;
  double ondemand_sum = 0, with_spot_sum = 0;

  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime now = grid.at(i);
    const double budget =
        std::max(0.0, capacity * (1.0 - options.capacity_reserve) -
                          ondemand[i]);

    // Admit this hour's arrivals.
    while (next_arrival < arrivals.size() && arrivals[next_arrival] < now + kHour) {
      const SimTime when = arrivals[next_arrival++];
      ++report.jobs_submitted;
      if (!use_spot(when)) {
        ++outcome.routed_ondemand;
        continue;
      }
      const double in_use =
          static_cast<double>(running.size()) * options.job_cores;
      if (in_use + options.job_cores <= budget) {
        running.push_back({when, 0});
        ++admitted_by_hour[hour_of_day(when)];
      } else {
        ++report.jobs_rejected;
      }
    }

    // Evict newest-first if on-demand demand squeezed the budget.
    while (!running.empty() &&
           static_cast<double>(running.size()) * options.job_cores > budget) {
      ++report.jobs_evicted;
      ++evicted_by_hour[hour_of_day(running.back().submitted)];
      running.pop_back();
    }

    // Serve one hour and complete finished jobs.
    const double spot_in_use =
        static_cast<double>(running.size()) * options.job_cores;
    report.spot_cores[i] = spot_in_use;
    report.free_cores[i] = std::max(0.0, budget - spot_in_use);
    report.spot_core_hours += spot_in_use;
    if (in_valley(now, tz)) valley_core_hours += spot_in_use;
    ondemand_sum += ondemand[i];
    with_spot_sum += ondemand[i] + spot_in_use;

    for (auto& job : running) job.served += kHour;
    std::erase_if(running, [&](const SpotJob& job) {
      if (job.served >= options.job_duration) {
        ++report.jobs_completed;
        return true;
      }
      return false;
    });
  }

  const std::size_t admitted = report.jobs_completed + report.jobs_evicted +
                               running.size();
  report.eviction_rate =
      admitted ? double(report.jobs_evicted) / double(admitted) : 0.0;
  if (report.spot_core_hours > 0)
    report.valley_share = valley_core_hours / report.spot_core_hours;
  report.utilization_before = ondemand_sum / (capacity * double(grid.count));
  report.utilization_with_spot =
      with_spot_sum / (capacity * double(grid.count));
  for (int h = 0; h < 24; ++h) {
    report.eviction_risk_by_hour[h] =
        admitted_by_hour[h]
            ? double(evicted_by_hour[h]) / double(admitted_by_hour[h])
            : 0.0;
  }
  return outcome;
}

}  // namespace

SpotMarketReport simulate_spot_market(const TraceStore& trace,
                                      const SpotMarketOptions& options) {
  return run_market(trace, options, [](SimTime) { return true; }).report;
}

MixtureComparison compare_mixture_policy(const TraceStore& trace,
                                         const SpotMarketOptions& options,
                                         double risk_threshold) {
  MixtureComparison cmp;
  cmp.risk_threshold = risk_threshold;

  // Learn the risk table from an all-spot run.
  const auto all_spot =
      run_market(trace, options, [](SimTime) { return true; });
  const auto& risk = all_spot.report.eviction_risk_by_hour;

  const double job_core_hours =
      options.job_cores * double(options.job_duration) / double(kHour);

  // All on-demand: everything completes at full price.
  cmp.all_ondemand_cost =
      double(all_spot.report.jobs_submitted) * job_core_hours;

  // All spot: pay the spot rate for served hours (including hours wasted on
  // later-evicted jobs); evicted and rejected jobs rerun on-demand.
  cmp.all_spot_cost =
      all_spot.report.spot_core_hours * options.spot_price_ratio +
      double(all_spot.report.jobs_evicted + all_spot.report.jobs_rejected) *
          job_core_hours;
  cmp.all_spot_completion =
      all_spot.report.jobs_submitted
          ? double(all_spot.report.jobs_completed) /
                double(all_spot.report.jobs_submitted)
          : 0.0;

  // Mixture: submissions at risky hours go straight to on-demand.
  const auto mixture = run_market(trace, options, [&](SimTime when) {
    return risk[hour_of_day(when)] <= risk_threshold;
  });
  cmp.mixture_cost =
      mixture.report.spot_core_hours * options.spot_price_ratio +
      double(mixture.report.jobs_evicted + mixture.report.jobs_rejected +
             mixture.routed_ondemand) *
          job_core_hours;
  cmp.mixture_completion =
      mixture.report.jobs_submitted
          ? double(mixture.report.jobs_completed + mixture.routed_ondemand) /
                double(mixture.report.jobs_submitted)
          : 0.0;
  return cmp;
}

}  // namespace cloudlens::policies
