// Predictive pre-provisioning for hourly-peak workloads (Sec. IV-A
// implication: hourly peaks at :00/:30 "call for appropriate management
// strategies in private cloud, such as predictive resource
// pre-provisioning" — the paper's refs [19], [20]).
//
// Two capacity controllers are compared against the aggregate demand of a
// set of hourly-peak VMs:
//   reactive   — capacity tracks a trailing average plus headroom; it lags
//                the sharp :00/:30 spikes;
//   predictive — additionally raises a pre-provisioned buffer shortly
//                before each hour/half-hour mark, absorbing the spike.
#pragma once

#include <vector>

#include "cloudsim/trace.h"
#include "stats/series.h"

namespace cloudlens::policies {

struct PreprovisionOptions {
  /// Headroom both controllers keep above the trailing average.
  double headroom = 0.15;
  /// Trailing-average window of the reactive controller.
  SimDuration trailing_window = 30 * kMinute;
  /// How long before each :00/:30 mark the predictive controller raises
  /// capacity, and for how long it holds it.
  SimDuration pre_lead = 10 * kMinute;
  SimDuration pre_hold = 15 * kMinute;
  /// Size of the predictive buffer relative to the observed mean
  /// peak-over-average excess.
  double buffer_scale = 1.2;
  /// VMs sampled from the trace (hourly-peak classified).
  std::size_t max_vms = 400;
};

struct PreprovisionReport {
  std::size_t vms_used = 0;
  /// Fraction of intervals where demand exceeded provisioned capacity.
  double reactive_violation_rate = 0;
  double predictive_violation_rate = 0;
  /// Mean provisioned capacity (cores) of each controller — the cost side.
  double reactive_mean_capacity = 0;
  double predictive_mean_capacity = 0;
  /// Aggregate demand and both capacity traces (for plotting).
  stats::TimeSeries demand;
  stats::TimeSeries reactive_capacity;
  stats::TimeSeries predictive_capacity;
};

/// Evaluate both controllers on the aggregate demand of the hourly-peak
/// VMs of `cloud` (ground truth from the classifier at extraction time).
PreprovisionReport evaluate_preprovisioning(
    const TraceStore& trace, CloudType cloud,
    const PreprovisionOptions& options = {});

}  // namespace cloudlens::policies
