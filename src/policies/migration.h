// Lifetime-aware node evacuation (the paper's introductory motivating
// example): when a node shows unhealthy signals (e.g. an imminent disk
// failure), migrate out only the VMs with long expected remaining time and
// let the short-lived ones drain — saving migration bandwidth without
// exposing long-lived VMs to the failure.
#pragma once

#include <vector>

#include "analysis/lifetime_predictor.h"
#include "cloudsim/trace.h"

namespace cloudlens::policies {

struct EvacuationOptions {
  /// When the unhealthy signal fires.
  SimTime now = 2 * kDay + 10 * kHour;
  /// How long the node survives after the signal. Drained VMs still alive
  /// at now + grace would have been hit by the failure.
  SimDuration failure_grace = 2 * kHour;
  /// Migrate a VM iff its conditional survival probability past the grace
  /// window, P(L > age + grace | L > age), is at least this. A survival
  /// criterion (rather than expected remaining lifetime) is robust to
  /// heavy-tailed lifetime mixtures, where a few week-long roles inflate
  /// every expectation.
  double migrate_survival_threshold = 0.5;
};

struct EvacuationPlan {
  NodeId node;
  std::vector<VmId> migrate;  ///< long-remaining VMs: live-migrate now
  std::vector<VmId> drain;    ///< short-remaining VMs: let them finish
  double migrated_cores = 0;
  double drained_cores = 0;
};

/// Plan the evacuation of one node using remaining-lifetime knowledge.
EvacuationPlan plan_node_evacuation(const TraceStore& trace,
                                    const analysis::LifetimePredictor& predictor,
                                    NodeId node,
                                    const EvacuationOptions& options = {});

/// Score a plan against ground truth (the trace knows when each VM really
/// ended). The lifetime-agnostic baseline migrates every alive VM.
struct EvacuationEvaluation {
  std::size_t alive_vms = 0;
  std::size_t planned_migrations = 0;   ///< knowledge-aware plan
  std::size_t baseline_migrations = 0;  ///< migrate-everything baseline
  /// Migrations the plan performed on VMs that actually ended within the
  /// grace window (wasted work).
  std::size_t wasted_migrations = 0;
  /// Drained VMs that actually outlived the grace window (would have been
  /// hit by the node failure — the plan's risk).
  std::size_t exposed_vms = 0;
  /// Migration cores saved relative to the baseline.
  double cores_saved = 0;
};

EvacuationEvaluation evaluate_evacuation(const TraceStore& trace,
                                         const EvacuationPlan& plan,
                                         const EvacuationOptions& options = {});

/// Fleet-level summary: plan evacuations for `max_nodes` busiest nodes of a
/// cloud and aggregate the evaluation.
EvacuationEvaluation evaluate_fleet_evacuation(
    const TraceStore& trace, const analysis::LifetimePredictor& predictor,
    CloudType cloud, std::size_t max_nodes = 100,
    const EvacuationOptions& options = {});

}  // namespace cloudlens::policies
