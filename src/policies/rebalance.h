// Region rebalancing of region-agnostic workloads (Sec. IV-B implication
// and the paper's Azure pilot: shifting Service-X from Canada-A to Canada-B
// cut Canada-A's underutilized-core percentage from 23% to 16% and its core
// utilization rate from 42% to 37%).
#pragma once

#include <optional>
#include <vector>

#include "cloudsim/trace.h"

namespace cloudlens::policies {

/// Capacity-health metrics of one region (one cloud), at a snapshot.
struct RegionLoad {
  RegionId region;
  double total_cores = 0;      ///< physical cores in the region's clusters
  double allocated_cores = 0;  ///< cores of VMs alive at the snapshot
  double used_cores = 0;       ///< Σ mean-utilization × cores
  /// allocated / total — the paper's "core utilization rate".
  double core_utilization_rate = 0;
  /// Cores allocated to VMs whose mean utilization is below the threshold,
  /// as a fraction of total cores — the "underutilized core percentage".
  double underutilized_core_pct = 0;
};

struct RebalanceOptions {
  SimTime snapshot = 2 * kDay + 14 * kHour;
  /// A VM with mean utilization below this is "underutilized".
  double underutilized_threshold = 0.10;
  /// Minimum cross-region utilization correlation for a service to be
  /// treated as region-agnostic (and therefore safely movable).
  double region_agnostic_correlation = 0.7;
  /// VMs sampled per region when testing region-agnosticism.
  std::size_t max_vms_per_region = 15;
};

RegionLoad region_load(const TraceStore& trace, CloudType cloud,
                       RegionId region, const RebalanceOptions& options = {});

std::vector<RegionLoad> all_region_loads(const TraceStore& trace,
                                         CloudType cloud,
                                         const RebalanceOptions& options = {});

struct ShiftRecommendation {
  ServiceId service;
  RegionId from;
  RegionId to;
  double cores_moved = 0;
  double service_mean_utilization = 0;
};

/// Pick the unhealthiest source region (highest underutilized-core share),
/// a region-agnostic service with low mean utilization deployed there, and
/// the destination region with the most idle capacity that can absorb the
/// move. Returns nullopt when no region-agnostic service qualifies.
std::optional<ShiftRecommendation> recommend_shift(
    const TraceStore& trace, CloudType cloud,
    const RebalanceOptions& options = {});

struct ShiftOutcome {
  ShiftRecommendation shift;
  RegionLoad source_before, source_after;
  RegionLoad dest_before, dest_after;
};

/// What-if evaluation: recompute both regions' loads with the service's
/// source-region VMs accounted in the destination instead.
ShiftOutcome evaluate_shift(const TraceStore& trace, CloudType cloud,
                            const ShiftRecommendation& shift,
                            const RebalanceOptions& options = {});

}  // namespace cloudlens::policies
