#include "policies/spot.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace cloudlens::policies {
namespace {

bool in_valley(int hour, int start, int end) {
  // The valley window may wrap midnight (e.g. 22 -> 6).
  if (start <= end) return hour >= start && hour <= end;
  return hour >= start || hour <= end;
}

}  // namespace

SpotReport evaluate_spot_adoption(const TraceStore& trace, CloudType cloud,
                                  const SpotOptions& options) {
  CL_CHECK(options.max_lifetime > 0);
  SpotReport report;
  Rng rng(options.seed);

  std::size_t evicted = 0;
  double valley_hours = 0;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.ended()) continue;
    if (vm.created < 0 || vm.deleted > kWeek) continue;
    ++report.ended_vms;
    const double hours = static_cast<double>(vm.lifetime()) / double(kHour);
    const double core_hours = hours * vm.cores;
    report.total_core_hours += core_hours;
    if (vm.lifetime() > options.max_lifetime) continue;

    ++report.candidate_vms;
    report.spot_core_hours += core_hours;
    // Eviction: exponential with the configured rate over the VM lifetime.
    if (rng.exponential(options.eviction_rate_per_hour) < hours) ++evicted;
    // Valley share: integrate hour by hour over the VM's life.
    for (SimTime t = vm.created; t < vm.deleted; t += kHour) {
      const double span =
          std::min<double>(double(kHour), double(vm.deleted - t)) /
          double(kHour);
      if (in_valley(hour_of_day(t), options.valley_start_hour,
                    options.valley_end_hour))
        valley_hours += span * vm.cores;
    }
  }

  if (report.ended_vms > 0)
    report.candidate_share = static_cast<double>(report.candidate_vms) /
                             static_cast<double>(report.ended_vms);
  if (report.total_core_hours > 0)
    report.cost_savings_fraction = report.spot_core_hours *
                                   (1.0 - options.spot_price_ratio) /
                                   report.total_core_hours;
  if (report.candidate_vms > 0)
    report.evicted_share = static_cast<double>(evicted) /
                           static_cast<double>(report.candidate_vms);
  if (report.spot_core_hours > 0)
    report.valley_spot_share = valley_hours / report.spot_core_hours;
  return report;
}

}  // namespace cloudlens::policies
