#include "policies/migration.h"

#include "common/check.h"

namespace cloudlens::policies {

EvacuationPlan plan_node_evacuation(
    const TraceStore& trace, const analysis::LifetimePredictor& predictor,
    NodeId node, const EvacuationOptions& options) {
  EvacuationPlan plan;
  plan.node = node;
  for (const VmId id : trace.vms_on_node(node)) {
    const auto& vm = trace.vm(id);
    if (!vm.alive_at(options.now)) continue;
    const double age = static_cast<double>(options.now - vm.created);
    const double alive_now = predictor.survival(age);
    // Conditional survival past the failure window. When the VM has
    // outlived every observed lifetime, assume it keeps living (Lindy).
    const double outlives_grace =
        alive_now > 0
            ? predictor.survival(age + double(options.failure_grace)) /
                  alive_now
            : 1.0;
    if (outlives_grace >= options.migrate_survival_threshold) {
      plan.migrate.push_back(id);
      plan.migrated_cores += vm.cores;
    } else {
      plan.drain.push_back(id);
      plan.drained_cores += vm.cores;
    }
  }
  return plan;
}

EvacuationEvaluation evaluate_evacuation(const TraceStore& trace,
                                         const EvacuationPlan& plan,
                                         const EvacuationOptions& options) {
  EvacuationEvaluation eval;
  const SimTime failure_time = options.now + options.failure_grace;
  eval.alive_vms = plan.migrate.size() + plan.drain.size();
  eval.planned_migrations = plan.migrate.size();
  eval.baseline_migrations = eval.alive_vms;
  for (const VmId id : plan.migrate) {
    const auto& vm = trace.vm(id);
    // Ground truth: did the migrated VM actually end before the node died?
    if (vm.deleted <= failure_time) ++eval.wasted_migrations;
  }
  for (const VmId id : plan.drain) {
    const auto& vm = trace.vm(id);
    if (vm.deleted > failure_time) ++eval.exposed_vms;
    else eval.cores_saved += vm.cores;
  }
  return eval;
}

EvacuationEvaluation evaluate_fleet_evacuation(
    const TraceStore& trace, const analysis::LifetimePredictor& predictor,
    CloudType cloud, std::size_t max_nodes,
    const EvacuationOptions& options) {
  EvacuationEvaluation total;
  std::size_t used = 0;
  for (const auto& node : trace.topology().nodes()) {
    if (node.cloud != cloud) continue;
    if (max_nodes > 0 && used >= max_nodes) break;
    const auto plan =
        plan_node_evacuation(trace, predictor, node.id, options);
    if (plan.migrate.empty() && plan.drain.empty()) continue;
    ++used;
    const auto eval = evaluate_evacuation(trace, plan, options);
    total.alive_vms += eval.alive_vms;
    total.planned_migrations += eval.planned_migrations;
    total.baseline_migrations += eval.baseline_migrations;
    total.wasted_migrations += eval.wasted_migrations;
    total.exposed_vms += eval.exposed_vms;
    total.cores_saved += eval.cores_saved;
  }
  return total;
}

}  // namespace cloudlens::policies
