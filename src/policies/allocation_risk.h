// Allocation-failure risk assessment (Insight 1's implication: "the large
// deployment size makes private cloud workloads more prone to allocation
// failures, especially when clusters are reaching capacity limits").
//
// Given the observed occupancy of a region over the week, estimate the
// probability that a deployment of N VMs can be fully placed: the what-if
// placement is replayed at many instants across the window, and the risk is
// the fraction of instants at which the deployment does not fit.
#pragma once

#include <cstddef>

#include "cloudsim/trace.h"

namespace cloudlens::policies {

struct AllocationRiskOptions {
  /// Number of evenly spaced instants sampled across the window.
  std::size_t time_samples = 56;
  /// Spread the deployment across racks (mirrors the allocator's
  /// fault-domain rule: at most ceil(N / racks) VMs of the deployment per
  /// rack).
  bool spread_fault_domains = true;
};

struct AllocationRiskReport {
  std::size_t instants_evaluated = 0;
  std::size_t instants_failed = 0;
  /// Fraction of instants at which the full deployment could not be placed.
  double failure_probability = 0;
  /// Mean free cores in the region across the sampled instants.
  double mean_free_cores = 0;
};

/// Risk of placing `vm_count` VMs of `cores_per_vm` cores into `region`
/// (one cloud), evaluated against the trace's occupancy.
AllocationRiskReport assess_allocation_risk(
    const TraceStore& trace, CloudType cloud, RegionId region,
    std::size_t vm_count, double cores_per_vm,
    const AllocationRiskOptions& options = {});

}  // namespace cloudlens::policies
