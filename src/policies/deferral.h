// Deferrable-workload valley filling (Sec. IV-A implication: "identifying
// deferrable workloads and schedul[ing] them to the valley hour would be a
// feasible way to leverage the observed utilization pattern in private
// cloud for resource management optimization").
#pragma once

#include <vector>

#include "cloudsim/trace.h"
#include "stats/series.h"

namespace cloudlens::policies {

/// A deferrable batch job: needs `cores` for `duration`, must finish by
/// `deadline`, may start at or after `release`.
struct DeferrableJob {
  double cores = 1;
  SimDuration duration = kHour;
  SimTime release = 0;
  SimTime deadline = kWeek;
};

struct DeferralReport {
  /// Hourly demand (used cores) before and after placing the jobs.
  stats::TimeSeries demand_before;
  stats::TimeSeries demand_after;
  double peak_before = 0, peak_after = 0;
  /// Ratio of minimum to mean demand — valley filling raises it.
  double valley_to_mean_before = 0, valley_to_mean_after = 0;
  std::size_t jobs_scheduled = 0;
  std::size_t jobs_rejected = 0;  ///< no feasible window before deadline
};

struct DeferralOptions {
  /// VMs sampled when estimating the region demand curve.
  std::size_t max_vms = 3000;
};

/// Greedy valley scheduler: jobs (largest core-hours first) are placed at
/// the feasible start hour minimizing the resulting peak demand.
DeferralReport schedule_deferrable(const TraceStore& trace, CloudType cloud,
                                   RegionId region,
                                   std::vector<DeferrableJob> jobs,
                                   const DeferralOptions& options = {});

}  // namespace cloudlens::policies
