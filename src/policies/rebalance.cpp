#include "policies/rebalance.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "analysis/context.h"
#include "analysis/spatial.h"
#include "common/check.h"

namespace cloudlens::policies {
namespace {

/// Mean utilization over the telemetry window (coarse 20-minute sampling —
/// load metrics do not need 5-minute resolution).
double vm_mean_util(const TraceStore& trace, const VmRecord& vm) {
  if (!vm.utilization) return 0.0;
  const TimeGrid& grid = trace.telemetry_grid();
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t t = 0; t < grid.count; t += 4) {
    const SimTime when = grid.at(t);
    if (!vm.alive_at(when)) continue;
    sum += vm.utilization->at(when);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

/// Region load where each VM's effective region is remapped by `region_of`
/// (identity for the real load; the shift what-if overrides one service).
RegionLoad load_with_mapping(
    const TraceStore& trace, CloudType cloud, RegionId region,
    const RebalanceOptions& options,
    const std::function<RegionId(const VmRecord&)>& region_of) {
  RegionLoad load;
  load.region = region;
  load.total_cores = trace.topology().region_total_cores(region, cloud);
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.alive_at(options.snapshot)) continue;
    if (region_of(vm) != region) continue;
    load.allocated_cores += vm.cores;
    const double mean_util = vm_mean_util(trace, vm);
    load.used_cores += mean_util * vm.cores;
    if (mean_util < options.underutilized_threshold)
      load.underutilized_core_pct += vm.cores;
  }
  if (load.total_cores > 0) {
    load.core_utilization_rate = load.allocated_cores / load.total_cores;
    load.underutilized_core_pct /= load.total_cores;
  }
  return load;
}

}  // namespace

RegionLoad region_load(const TraceStore& trace, CloudType cloud,
                       RegionId region, const RebalanceOptions& options) {
  return load_with_mapping(trace, cloud, region, options,
                           [](const VmRecord& vm) { return vm.region; });
}

std::vector<RegionLoad> all_region_loads(const TraceStore& trace,
                                         CloudType cloud,
                                         const RebalanceOptions& options) {
  std::vector<RegionLoad> out;
  for (const auto& region : trace.topology().regions())
    out.push_back(region_load(trace, cloud, region.id, options));
  return out;
}

std::optional<ShiftRecommendation> recommend_shift(
    const TraceStore& trace, CloudType cloud,
    const RebalanceOptions& options) {
  const auto loads = all_region_loads(trace, cloud, options);
  if (loads.size() < 2) return std::nullopt;

  // Source: the region with the highest underutilized-core percentage.
  const auto& source = *std::max_element(
      loads.begin(), loads.end(), [](const RegionLoad& a, const RegionLoad& b) {
        return a.underutilized_core_pct < b.underutilized_core_pct;
      });

  // Movable services: region-agnostic per the utilization-similarity test.
  const auto verdicts = analysis::detect_region_agnostic_services(
      AnalysisContext(trace), cloud, options.region_agnostic_correlation,
      options.max_vms_per_region);

  std::optional<ShiftRecommendation> best;
  double best_score = 0;
  for (const auto& v : verdicts) {
    if (!v.region_agnostic) continue;
    // The service's footprint and mean utilization in the source region.
    double cores = 0, used = 0, underutilized = 0;
    for (const auto& vm : trace.vms()) {
      if (vm.cloud != cloud || vm.service != v.service) continue;
      if (vm.region != source.region || !vm.alive_at(options.snapshot))
        continue;
      cores += vm.cores;
      const double mean_util = vm_mean_util(trace, vm);
      used += mean_util * vm.cores;
      if (mean_util < options.underutilized_threshold)
        underutilized += vm.cores;
    }
    if (cores <= 0) continue;
    const double mean_util = used / cores;
    // Moving out underutilized cores is what improves the source region's
    // underutilized-core percentage (the pilot's headline metric), so they
    // dominate the score; footprint idleness breaks ties.
    const double score = underutilized * 10.0 + cores * (1.0 - mean_util);
    if (score > best_score) {
      best_score = score;
      ShiftRecommendation rec;
      rec.service = v.service;
      rec.from = source.region;
      rec.cores_moved = cores;
      rec.service_mean_utilization = mean_util;
      best = rec;
    }
  }
  if (!best) return std::nullopt;

  // Destination: the emptiest region that can absorb the move.
  double best_rate = std::numeric_limits<double>::infinity();
  for (const auto& load : loads) {
    if (load.region == best->from) continue;
    const double free = load.total_cores - load.allocated_cores;
    if (free < best->cores_moved) continue;
    if (load.core_utilization_rate < best_rate) {
      best_rate = load.core_utilization_rate;
      best->to = load.region;
    }
  }
  if (!best->to.valid()) return std::nullopt;
  return best;
}

ShiftOutcome evaluate_shift(const TraceStore& trace, CloudType cloud,
                            const ShiftRecommendation& shift,
                            const RebalanceOptions& options) {
  CL_CHECK(shift.from.valid() && shift.to.valid() && shift.service.valid());
  ShiftOutcome outcome;
  outcome.shift = shift;
  outcome.source_before = region_load(trace, cloud, shift.from, options);
  outcome.dest_before = region_load(trace, cloud, shift.to, options);

  const auto moved = [&shift](const VmRecord& vm) {
    if (vm.service == shift.service && vm.region == shift.from)
      return shift.to;
    return vm.region;
  };
  outcome.source_after =
      load_with_mapping(trace, cloud, shift.from, options, moved);
  outcome.dest_after = load_with_mapping(trace, cloud, shift.to, options, moved);
  return outcome;
}

}  // namespace cloudlens::policies
