#include "policies/oversub_placement.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::policies {
namespace {

/// First-fit-decreasing bin packing; returns each item's bin index.
std::vector<std::size_t> pack_ffd(const std::vector<double>& sizes,
                                  double capacity, std::size_t* bins_used) {
  std::vector<std::size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sizes[a] > sizes[b];
  });
  std::vector<double> bin_free;
  std::vector<std::size_t> assignment(sizes.size(), 0);
  for (const std::size_t i : order) {
    CL_CHECK_MSG(sizes[i] <= capacity,
                 "item larger than node capacity cannot be packed");
    bool placed = false;
    for (std::size_t b = 0; b < bin_free.size(); ++b) {
      if (bin_free[b] >= sizes[i]) {
        bin_free[b] -= sizes[i];
        assignment[i] = b;
        placed = true;
        break;
      }
    }
    if (!placed) {
      bin_free.push_back(capacity - sizes[i]);
      assignment[i] = bin_free.size() - 1;
    }
  }
  *bins_used = bin_free.size();
  return assignment;
}

}  // namespace

OversubPlacementReport simulate_oversubscribed_placement(
    const TraceStore& trace, CloudType cloud,
    const OversubPlacementOptions& options) {
  CL_CHECK(options.safety_quantile > 0 && options.safety_quantile <= 1.0);
  CL_CHECK(options.node_cores > 0);
  const TimeGrid& grid = trace.telemetry_grid();

  // Sample window-covering VMs and materialize their demand series.
  std::vector<VmId> candidates;
  for (const auto& vm : trace.vms()) {
    if (vm.cloud != cloud || !vm.covers(grid) || !vm.utilization) continue;
    if (vm.cores > options.node_cores) continue;  // cannot repack
    candidates.push_back(vm.id);
  }
  std::size_t stride = 1;
  if (options.max_vms > 0 && candidates.size() > options.max_vms)
    stride = candidates.size() / options.max_vms;

  std::vector<std::vector<double>> demand;  // per VM, per interval
  std::vector<double> full_size, effective_size;
  for (std::size_t i = 0; i < candidates.size(); i += stride) {
    const auto& vm = trace.vm(candidates[i]);
    std::vector<double> d(grid.count);
    for (std::size_t t = 0; t < grid.count; ++t)
      d[t] = vm.cores * vm.utilization->at(grid.at(t));
    effective_size.push_back(
        std::max(0.01, stats::quantile(d, options.safety_quantile)));
    full_size.push_back(vm.cores);
    demand.push_back(std::move(d));
  }

  OversubPlacementReport report;
  report.vms_packed = demand.size();
  if (demand.empty()) return report;

  std::size_t baseline_bins = 0, oversub_bins = 0;
  (void)pack_ffd(full_size, options.node_cores, &baseline_bins);
  const auto assignment =
      pack_ffd(effective_size, options.node_cores, &oversub_bins);
  report.baseline_nodes = baseline_bins;
  report.oversub_nodes = oversub_bins;
  report.nodes_saved_fraction =
      baseline_bins > 0
          ? 1.0 - double(oversub_bins) / double(baseline_bins)
          : 0.0;

  // Replay true demand against the consolidated layout.
  std::vector<std::vector<double>> node_demand(
      oversub_bins, std::vector<double>(grid.count, 0.0));
  for (std::size_t i = 0; i < demand.size(); ++i) {
    auto& nd = node_demand[assignment[i]];
    for (std::size_t t = 0; t < grid.count; ++t) nd[t] += demand[i][t];
  }
  std::size_t hot = 0, total = 0;
  double worst = 0;
  for (const auto& nd : node_demand) {
    for (const double d : nd) {
      ++total;
      if (d > options.node_cores) ++hot;
      worst = std::max(worst, d / options.node_cores);
    }
  }
  report.hot_interval_share = total ? double(hot) / double(total) : 0.0;
  report.worst_node_pressure = worst;
  return report;
}

}  // namespace cloudlens::policies
