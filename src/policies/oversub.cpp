#include "policies/oversub.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::policies {

OversubscriptionReport evaluate_oversubscription(
    const TraceStore& trace, CloudType cloud,
    const OversubscriptionOptions& options) {
  CL_CHECK(options.safety_quantile > 0 && options.safety_quantile <= 1.0);
  const TimeGrid& grid = trace.telemetry_grid();

  // Candidate nodes with enough window-covering VMs.
  std::vector<std::pair<NodeId, std::vector<VmId>>> candidates;
  for (const auto& node : trace.topology().nodes()) {
    if (node.cloud != cloud) continue;
    std::vector<VmId> vms;
    for (const VmId id : trace.vms_on_node(node.id)) {
      const auto& vm = trace.vm(id);
      if (vm.covers(grid) && vm.utilization) vms.push_back(id);
    }
    if (vms.size() >= options.min_vms_per_node)
      candidates.emplace_back(node.id, std::move(vms));
  }

  std::size_t stride = 1;
  if (options.max_nodes > 0 && candidates.size() > options.max_nodes)
    stride = candidates.size() / options.max_nodes;

  OversubscriptionReport report;
  std::size_t violations = 0, intervals = 0;
  std::vector<double> demand(grid.count);
  for (std::size_t i = 0; i < candidates.size(); i += stride) {
    const auto& [node_id, vms] = candidates[i];
    std::fill(demand.begin(), demand.end(), 0.0);
    double allocated = 0;
    for (const VmId id : vms) {
      const auto& vm = trace.vm(id);
      allocated += vm.cores;
      for (std::size_t t = 0; t < grid.count; ++t)
        demand[t] += vm.cores * vm.utilization->at(grid.at(t));
    }
    const double reservation =
        stats::quantile(demand, options.safety_quantile);

    ++report.nodes_evaluated;
    report.baseline_reserved_cores += allocated;
    report.policy_reserved_cores += reservation;
    report.mean_demand_cores += stats::mean(demand);
    for (const double d : demand) {
      if (d > reservation) ++violations;
    }
    intervals += demand.size();
  }

  if (report.policy_reserved_cores > 0 &&
      report.baseline_reserved_cores > 0) {
    report.reservation_shrink =
        1.0 - report.policy_reserved_cores / report.baseline_reserved_cores;
    report.utilization_improvement =
        report.baseline_reserved_cores / report.policy_reserved_cores - 1.0;
  }
  if (intervals > 0)
    report.violation_rate =
        static_cast<double>(violations) / static_cast<double>(intervals);
  return report;
}

}  // namespace cloudlens::policies
