// Chance-constrained resource oversubscription (Sec. III-B implication).
//
// Instead of reserving each VM's full allocated cores (peak reservation),
// the policy reserves, per node, the q-quantile of the node's aggregate
// CPU demand: P(demand <= reservation) >= q. The paper cites 20%-86%
// utilization improvement in Azure depending on the safety level (ref [17]);
// the ablation bench sweeps q to reproduce that range's shape.
#pragma once

#include <cstddef>

#include "cloudsim/trace.h"

namespace cloudlens::policies {

struct OversubscriptionOptions {
  /// Safety level of the chance constraint (e.g. 0.99 = demand may exceed
  /// the reservation in at most 1% of intervals).
  double safety_quantile = 0.99;
  /// Nodes evaluated (deterministic stride subsampling; 0 = all).
  std::size_t max_nodes = 300;
  /// Only nodes hosting at least this many window-covering VMs count.
  std::size_t min_vms_per_node = 2;
};

struct OversubscriptionReport {
  std::size_t nodes_evaluated = 0;
  /// Σ allocated VM cores over evaluated nodes (the baseline reservation).
  double baseline_reserved_cores = 0;
  /// Σ per-node demand quantiles (the chance-constrained reservation).
  double policy_reserved_cores = 0;
  /// Mean actual demand (used cores).
  double mean_demand_cores = 0;
  /// reservation shrink = 1 - policy/baseline (freed capacity share).
  double reservation_shrink = 0;
  /// Effective-utilization improvement:
  /// (demand/policy_reserved) / (demand/baseline_reserved) - 1.
  double utilization_improvement = 0;
  /// Fraction of (node × interval) where demand exceeded the policy
  /// reservation — should be about 1 - safety_quantile.
  double violation_rate = 0;
};

OversubscriptionReport evaluate_oversubscription(
    const TraceStore& trace, CloudType cloud,
    const OversubscriptionOptions& options = {});

}  // namespace cloudlens::policies
