#include "policies/advisor.h"

#include <sstream>

#include "common/table.h"
#include "obs/metrics.h"

namespace cloudlens::policies {
namespace {

/// Decision counter for one recommendation kind (write-only side channel).
obs::Counter counter_for(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAdoptSpot: return obs::Counter::kPolicySpot;
    case ActionKind::kOversubscribe: return obs::Counter::kPolicyOversub;
    case ActionKind::kDeferToValley: return obs::Counter::kPolicyDeferral;
    case ActionKind::kPreprovision: return obs::Counter::kPolicyPreprovision;
    default: return obs::Counter::kPolicyRebalance;
  }
}

}  // namespace

std::string_view to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kAdoptSpot: return "adopt-spot";
    case ActionKind::kOversubscribe: return "oversubscribe";
    case ActionKind::kDeferToValley: return "defer-to-valley";
    case ActionKind::kPreprovision: return "preprovision";
    default: return "region-rebalance";
  }
}

std::size_t AdvisorReport::count(ActionKind kind) const {
  std::size_t n = 0;
  for (const auto& r : recommendations) {
    if (r.action == kind) ++n;
  }
  return n;
}

AdvisorReport advise(const TraceStore& trace, const kb::KnowledgeBase& kb,
                     CloudType cloud) {
  AdvisorReport report;
  report.cloud = cloud;

  for (const auto* rec : kb.by_cloud(cloud)) {
    std::ostringstream why;
    if (rec->spot_candidate) {
      Recommendation r;
      r.subscription = rec->subscription;
      r.action = ActionKind::kAdoptSpot;
      why << "short-lifetime share "
          << format_double(rec->short_lifetime_share, 2) << " over "
          << rec->ended_vms << " ended VMs";
      r.rationale = why.str();
      r.cores = rec->total_cores;
      report.recommendations.push_back(std::move(r));
    }
    if (rec->oversubscription_candidate) {
      Recommendation r;
      r.subscription = rec->subscription;
      r.action = ActionKind::kOversubscribe;
      r.rationale = "stable pattern, p95 utilization " +
                    format_double(rec->p95_utilization, 2);
      r.cores = rec->total_cores;
      report.recommendations.push_back(std::move(r));
    }
    if (rec->deferral_target) {
      Recommendation r;
      r.subscription = rec->subscription;
      r.action = ActionKind::kDeferToValley;
      r.rationale = "diurnal with peak/mean " +
                    format_double(rec->p95_utilization /
                                      std::max(1e-9, rec->mean_utilization),
                                  1);
      r.cores = rec->total_cores;
      report.recommendations.push_back(std::move(r));
    }
    if (rec->preprovision_target) {
      Recommendation r;
      r.subscription = rec->subscription;
      r.action = ActionKind::kPreprovision;
      r.rationale = "hourly-peak pattern (confidence " +
                    format_double(rec->pattern_confidence, 2) + ")";
      r.cores = rec->total_cores;
      report.recommendations.push_back(std::move(r));
    }
    if (rec->region_agnostic) {
      Recommendation r;
      r.subscription = rec->subscription;
      r.action = ActionKind::kRegionRebalance;
      r.rationale = "cross-region correlation " +
                    format_double(rec->cross_region_correlation, 2) +
                    " over " + std::to_string(rec->region_count) + " regions";
      r.cores = rec->total_cores;
      report.recommendations.push_back(std::move(r));
    }
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add(obs::Counter::kPolicyRecommendations,
              report.recommendations.size());
  for (const auto& r : report.recommendations) metrics.add(counter_for(r.action));

  // Platform-level evaluations backing the advisory.
  report.spot = evaluate_spot_adoption(trace, cloud);
  report.oversubscription = evaluate_oversubscription(trace, cloud);
  if (cloud == CloudType::kPrivate) {
    if (const auto shift = recommend_shift(trace, cloud))
      report.rebalance = evaluate_shift(trace, cloud, *shift);
  }
  return report;
}

std::string render_report(const TraceStore& trace,
                          const AdvisorReport& report) {
  std::ostringstream os;
  os << "Workload-aware advisory for the " << to_string(report.cloud)
     << " cloud\n";

  TextTable summary({"action", "subscriptions", "cores touched"});
  for (const ActionKind kind :
       {ActionKind::kAdoptSpot, ActionKind::kOversubscribe,
        ActionKind::kDeferToValley, ActionKind::kPreprovision,
        ActionKind::kRegionRebalance}) {
    double cores = 0;
    for (const auto& r : report.recommendations) {
      if (r.action == kind) cores += r.cores;
    }
    summary.row()
        .add(std::string(to_string(kind)))
        .add(report.count(kind))
        .add(cores, 0);
  }
  os << summary.to_string();

  os << "\nplatform evaluations:\n"
     << "  spot: candidate share "
     << format_double(report.spot.candidate_share, 2) << ", projected savings "
     << format_double(100 * report.spot.cost_savings_fraction, 1) << "%\n"
     << "  oversubscription (q=0.99): +"
     << format_double(100 * report.oversubscription.utilization_improvement, 1)
     << "% effective utilization, violation rate "
     << format_double(report.oversubscription.violation_rate, 4) << "\n";
  if (report.rebalance) {
    const auto& shift = *report.rebalance;
    os << "  rebalance: move "
       << trace.service(shift.shift.service).name << " from "
       << trace.topology().region(shift.shift.from).name << " to "
       << trace.topology().region(shift.shift.to).name << " ("
       << format_double(shift.shift.cores_moved, 0) << " cores); source "
       << "underutilized "
       << format_double(100 * shift.source_before.underutilized_core_pct, 1)
       << "% -> "
       << format_double(100 * shift.source_after.underutilized_core_pct, 1)
       << "%\n";
  }

  // Top recommendations by cores.
  auto sorted = report.recommendations;
  std::sort(sorted.begin(), sorted.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.cores > b.cores;
            });
  TextTable top({"subscription", "action", "cores", "rationale"});
  for (std::size_t i = 0; i < sorted.size() && i < 8; ++i) {
    std::ostringstream sub;
    sub << sorted[i].subscription;
    top.row()
        .add(sub.str())
        .add(std::string(to_string(sorted[i].action)))
        .add(sorted[i].cores, 0)
        .add(sorted[i].rationale);
  }
  os << "\ntop recommendations:\n" << top.to_string();
  return os.str();
}

}  // namespace cloudlens::policies
