// Oversubscribed placement simulation.
//
// The per-node evaluation in oversub.h answers "how much reservation can
// existing nodes shed?". This module answers the operator's next question:
// if VMs were *packed* by their chance-constrained effective size instead
// of their full allocation, how many nodes does the same population need,
// and how often do the consolidated nodes run hot? It re-packs a sample of
// window-covering VMs with first-fit-decreasing under both sizing rules and
// replays the true demand against the resulting layout.
#pragma once

#include <cstddef>
#include <vector>

#include "cloudsim/trace.h"

namespace cloudlens::policies {

struct OversubPlacementOptions {
  /// Chance-constraint level for a VM's effective size: the q-quantile of
  /// its observed demand (cores × utilization).
  double safety_quantile = 0.99;
  /// Node capacity used for the re-packing (cores).
  double node_cores = 64;
  /// VMs sampled from the cloud's window-covering population (0 = all).
  std::size_t max_vms = 1500;
};

struct OversubPlacementReport {
  std::size_t vms_packed = 0;
  /// Nodes needed when VMs occupy their full allocated cores.
  std::size_t baseline_nodes = 0;
  /// Nodes needed when VMs occupy their q-quantile effective size.
  std::size_t oversub_nodes = 0;
  /// 1 - oversub/baseline: the consolidation win.
  double nodes_saved_fraction = 0;
  /// Share of (node × 5-min interval) where the oversubscribed layout's
  /// true aggregate demand exceeded the physical cores.
  double hot_interval_share = 0;
  /// Worst observed node demand as a multiple of node capacity.
  double worst_node_pressure = 0;
};

OversubPlacementReport simulate_oversubscribed_placement(
    const TraceStore& trace, CloudType cloud,
    const OversubPlacementOptions& options = {});

}  // namespace cloudlens::policies
