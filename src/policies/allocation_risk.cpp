#include "policies/allocation_risk.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace cloudlens::policies {
namespace {

/// Greedy what-if placement of `vm_count` equal VMs onto nodes with given
/// free cores, optionally honouring a per-rack cap (fault-domain spread).
bool fits(std::vector<std::pair<RackId, double>>& free_by_node,
          std::size_t vm_count, double cores_per_vm, bool spread,
          std::size_t rack_count) {
  // Best-fit: sort ascending by free cores and fill tightest-first.
  std::sort(free_by_node.begin(), free_by_node.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  const std::size_t per_rack_cap =
      spread && rack_count > 0
          ? (vm_count + rack_count - 1) / rack_count + 1
          : vm_count;
  std::unordered_map<RackId, std::size_t> rack_used;
  std::size_t placed = 0;
  for (auto& [rack, free] : free_by_node) {
    while (placed < vm_count && free >= cores_per_vm &&
           rack_used[rack] < per_rack_cap) {
      free -= cores_per_vm;
      ++rack_used[rack];
      ++placed;
    }
    if (placed == vm_count) return true;
  }
  return placed == vm_count;
}

}  // namespace

AllocationRiskReport assess_allocation_risk(
    const TraceStore& trace, CloudType cloud, RegionId region,
    std::size_t vm_count, double cores_per_vm,
    const AllocationRiskOptions& options) {
  CL_CHECK(vm_count > 0 && cores_per_vm > 0);
  CL_CHECK(options.time_samples > 0);
  const Topology& topo = trace.topology();

  // Region nodes of the requested cloud.
  std::vector<NodeId> nodes;
  std::size_t rack_count = 0;
  for (const ClusterId cid : topo.clusters_in(region, cloud)) {
    const Cluster& cluster = topo.cluster(cid);
    rack_count += cluster.racks.size();
    nodes.insert(nodes.end(), cluster.nodes.begin(), cluster.nodes.end());
  }
  CL_CHECK_MSG(!nodes.empty(), "region has no clusters for this cloud");

  AllocationRiskReport report;
  const TimeGrid& grid = trace.telemetry_grid();
  const std::size_t stride =
      std::max<std::size_t>(1, grid.count / options.time_samples);

  for (std::size_t i = 0; i < grid.count; i += stride) {
    const SimTime now = grid.at(i);
    std::vector<std::pair<RackId, double>> free_by_node;
    free_by_node.reserve(nodes.size());
    double free_total = 0;
    for (const NodeId id : nodes) {
      const Node& node = topo.node(id);
      const double free =
          node.total_cores - trace.node_used_cores(id, now);
      free_by_node.emplace_back(node.rack, std::max(0.0, free));
      free_total += std::max(0.0, free);
    }
    ++report.instants_evaluated;
    report.mean_free_cores += free_total;
    if (!fits(free_by_node, vm_count, cores_per_vm,
              options.spread_fault_domains, rack_count))
      ++report.instants_failed;
  }
  report.mean_free_cores /= double(report.instants_evaluated);
  report.failure_probability =
      double(report.instants_failed) / double(report.instants_evaluated);
  return report;
}

}  // namespace cloudlens::policies
