// Spot VM adoption analysis (Sec. III-B implication for the public cloud).
//
// The paper observes that 81% of public-cloud VMs fall in the shortest
// lifetime bin and suggests running short-lived workloads on spot VMs,
// especially during the diurnal valley when platform capacity idles. This
// policy selects candidate VMs from a trace, simulates evictions, and
// reports the projected savings.
#pragma once

#include <cstdint>

#include "cloudsim/trace.h"

namespace cloudlens::policies {

struct SpotOptions {
  /// Ended VMs at most this long-lived are spot candidates.
  SimDuration max_lifetime = 2 * kHour;
  /// Poisson eviction rate while a spot VM runs.
  double eviction_rate_per_hour = 0.01;
  /// Cost of a spot core-hour relative to on-demand (Azure spot pricing
  /// is commonly 10-30% of on-demand; we use 0.3).
  double spot_price_ratio = 0.30;
  /// Local hours treated as the platform valley (inclusive range).
  int valley_start_hour = 22;
  int valley_end_hour = 6;
  std::uint64_t seed = 7;
};

struct SpotReport {
  std::size_t ended_vms = 0;
  std::size_t candidate_vms = 0;
  double candidate_share = 0;          ///< of ended VMs
  double total_core_hours = 0;         ///< ended VMs only
  double spot_core_hours = 0;
  /// Fraction of total cost saved by moving candidates to spot pricing.
  double cost_savings_fraction = 0;
  /// Of the candidates, the share interrupted at least once.
  double evicted_share = 0;
  /// Share of spot core-hours that run inside the valley window.
  double valley_spot_share = 0;
};

SpotReport evaluate_spot_adoption(const TraceStore& trace, CloudType cloud,
                                  const SpotOptions& options = {});

}  // namespace cloudlens::policies
