// The workload-aware advisor: the paper's Section V vision realized.
//
// "one first needs to abstract out the common optimization policies and
// then build a centralized workload knowledge base, which continuously
// extracts workload knowledge from telemetry signals ... and feeds them
// into the aforementioned optimization policies."
//
// The advisor consumes a KnowledgeBase plus the trace and emits one
// consolidated recommendation report per cloud, routing each subscription
// to the policies its knowledge record qualifies it for.
#pragma once

#include <string>
#include <vector>

#include "kb/store.h"
#include "policies/oversub.h"
#include "policies/rebalance.h"
#include "policies/spot.h"

namespace cloudlens::policies {

enum class ActionKind {
  kAdoptSpot,          ///< run this owner's short-lived VMs on spot capacity
  kOversubscribe,      ///< admit this owner under chance-constrained packing
  kDeferToValley,      ///< schedule this owner's deferrable work off-peak
  kPreprovision,       ///< pre-provision ahead of :00/:30 peaks
  kRegionRebalance,    ///< owner is region-agnostic: movable across regions
};

std::string_view to_string(ActionKind kind);

struct Recommendation {
  SubscriptionId subscription;
  ActionKind action = ActionKind::kAdoptSpot;
  /// Human-readable justification grounded in the knowledge record.
  std::string rationale;
  /// Rough impact proxy (cores touched by the action).
  double cores = 0;
};

struct AdvisorReport {
  CloudType cloud = CloudType::kPublic;
  std::vector<Recommendation> recommendations;
  /// Platform-level measurements backing the per-owner actions.
  SpotReport spot;
  OversubscriptionReport oversubscription;
  std::optional<ShiftOutcome> rebalance;  ///< private cloud only

  std::size_t count(ActionKind kind) const;
};

/// Build the per-cloud advisory from extracted knowledge.
AdvisorReport advise(const TraceStore& trace, const kb::KnowledgeBase& kb,
                     CloudType cloud);

/// Render the report as a console summary table.
std::string render_report(const TraceStore& trace, const AdvisorReport& report);

}  // namespace cloudlens::policies
