// Unit tests for the declarative flag table (common/args.h): both flag
// spellings, numeric strictness, and the offending-token error contract.
#include "common/args.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cloudlens {
namespace {

/// argv helper: owns the strings so char** stays valid for the call.
struct Argv {
  explicit Argv(std::vector<std::string> tokens) : storage(std::move(tokens)) {
    for (auto& t : storage) ptrs.push_back(t.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(ArgsTest, BothFlagSpellingsParse) {
  double scale = 0.0;
  std::string out;
  std::uint64_t seed = 0;
  args::FlagSet flags;
  flags.value("--scale", &scale).value("--out", &out).value("--seed", &seed);
  Argv a({"--scale", "0.5", "--out=dir", "--seed=7"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv(), 0)) << flags.error();
  EXPECT_DOUBLE_EQ(scale, 0.5);
  EXPECT_EQ(out, "dir");
  EXPECT_EQ(seed, 7u);
}

TEST(ArgsTest, PresenceFlagAndSeenTracking) {
  bool verbose = false;
  bool in_given = false;
  std::string dir;
  args::FlagSet flags;
  flags.flag("--verbose", &verbose).value("--in", &dir, &in_given);
  Argv a({"--verbose"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv(), 0));
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(in_given);
  Argv b({"--in", "trace"});
  ASSERT_TRUE(flags.parse(b.argc(), b.argv(), 0));
  EXPECT_TRUE(in_given);
  EXPECT_EQ(dir, "trace");
}

TEST(ArgsTest, UnknownFlagNamesToken) {
  args::FlagSet flags;
  bool unused = false;
  flags.flag("--known", &unused);
  Argv a({"--known", "--bogus"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv(), 0));
  EXPECT_EQ(flags.error(), "unknown flag: --bogus");
}

TEST(ArgsTest, MissingValueNamesFlag) {
  std::string out;
  args::FlagSet flags;
  flags.value("--out", &out);
  Argv a({"--out"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv(), 0));
  EXPECT_EQ(flags.error(), "missing value for --out");
}

TEST(ArgsTest, NumericValuesAreStrict) {
  double scale = 0.0;
  std::uint64_t n = 0;
  args::FlagSet flags;
  flags.value("--scale", &scale).value("--n", &n);
  Argv bad_tail({"--scale", "0.5x"});
  EXPECT_FALSE(flags.parse(bad_tail.argc(), bad_tail.argv(), 0));
  EXPECT_EQ(flags.error(), "invalid value for --scale: '0.5x' (want a number)");
  Argv bad_int({"--n=ten"});
  EXPECT_FALSE(flags.parse(bad_int.argc(), bad_int.argv(), 0));
  EXPECT_EQ(flags.error(),
            "invalid value for --n: 'ten' (want an unsigned integer)");
  Argv empty({"--n="});
  EXPECT_FALSE(flags.parse(empty.argc(), empty.argv(), 0));
}

TEST(ArgsTest, CustomHandlerRejectionIncludesHint) {
  std::string mode;
  args::FlagSet flags;
  flags.value(
      "--mode",
      [&mode](const std::string& v) {
        if (v != "strict" && v != "fast") return false;
        mode = v;
        return true;
      },
      "want strict|fast");
  Argv ok({"--mode=fast"});
  ASSERT_TRUE(flags.parse(ok.argc(), ok.argv(), 0));
  EXPECT_EQ(mode, "fast");
  Argv bad({"--mode", "sloppy"});
  EXPECT_FALSE(flags.parse(bad.argc(), bad.argv(), 0));
  EXPECT_EQ(flags.error(), "invalid value for --mode: 'sloppy' (want strict|fast)");
}

TEST(ArgsTest, PresenceFlagRejectsInlineValue) {
  bool on = false;
  args::FlagSet flags;
  flags.flag("--on", &on);
  Argv a({"--on=yes"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv(), 0));
  EXPECT_EQ(flags.error(), "flag takes no value: --on=yes");
  EXPECT_FALSE(on);
}

TEST(ArgsTest, PositionalTokenRejected) {
  args::FlagSet flags;
  Argv a({"stray"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv(), 0));
  EXPECT_EQ(flags.error(), "unexpected argument: stray");
}

TEST(ArgsTest, LaterOccurrenceWins) {
  std::uint64_t threads = 0;
  args::FlagSet flags;
  flags.value("--threads", &threads);
  Argv a({"--threads", "2", "--threads=8"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv(), 0));
  EXPECT_EQ(threads, 8u);
}

}  // namespace
}  // namespace cloudlens
