// Failure injection: node outages in the simulator.
#include <gtest/gtest.h>

#include "cloudsim/simulator.h"
#include "testutil.h"

namespace cloudlens {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  DeploymentRequest request(SimTime create, SimTime remove,
                            double cores = 4) {
    DeploymentRequest req;
    req.request.subscription = fx_.private_sub;
    req.request.cloud = CloudType::kPrivate;
    req.request.region = RegionId(0);
    req.request.cores = cores;
    req.request.memory_gb = cores * 4;
    req.create = create;
    req.remove = remove;
    req.utilization = std::make_shared<ConstantUtilization>(0.3);
    return req;
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(FailureInjectionTest, OutageTerminatesVmsOnNode) {
  // One VM, no recovery: the outage at day 2 ends its life early.
  std::vector<DeploymentRequest> reqs = {request(0, kNoEnd)};
  FailurePolicy policy;
  policy.resubmit = false;
  // Probe where best-fit lands the VM, then fail that node in the real run.
  {
    test::TraceFixture probe(topo_);
    run_simulation(topo_, probe.trace, reqs);
    ASSERT_EQ(probe.trace.vms().size(), 1u);
  }
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);

  const auto stats = run_simulation(topo_, fx_.trace, reqs, {},
                                    {{node, 2 * kDay}}, policy);
  EXPECT_EQ(stats.placed, 1u);
  EXPECT_EQ(stats.vms_failed, 1u);
  EXPECT_EQ(stats.vms_resubmitted, 0u);
  const VmRecord& vm = fx_.trace.vms()[0];
  EXPECT_EQ(vm.node, node);  // best-fit lands on the first node
  EXPECT_EQ(vm.deleted, 2 * kDay);
}

TEST_F(FailureInjectionTest, RecoveryResubmitsOnAnotherNode) {
  std::vector<DeploymentRequest> reqs = {request(0, kNoEnd)};
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  FailurePolicy policy;
  policy.resubmit = true;
  policy.recovery_delay = 30 * kMinute;

  const auto stats = run_simulation(topo_, fx_.trace, reqs, {},
                                    {{node, 2 * kDay}}, policy);
  EXPECT_EQ(stats.vms_failed, 1u);
  EXPECT_EQ(stats.vms_resubmitted, 1u);
  EXPECT_EQ(stats.placed, 2u);
  ASSERT_EQ(fx_.trace.vms().size(), 2u);

  const VmRecord& original = fx_.trace.vms()[0];
  const VmRecord& recovered = fx_.trace.vms()[1];
  EXPECT_EQ(original.deleted, 2 * kDay);
  EXPECT_EQ(recovered.created, 2 * kDay + 30 * kMinute);
  EXPECT_EQ(recovered.deleted, kNoEnd);
  EXPECT_NE(recovered.node, original.node);  // failed node unavailable
  EXPECT_EQ(recovered.subscription, original.subscription);
  EXPECT_DOUBLE_EQ(recovered.cores, original.cores);
  EXPECT_EQ(recovered.utilization.get(), original.utilization.get());
}

TEST_F(FailureInjectionTest, ShortVmsNotResubmitted) {
  // The VM would have ended 5 minutes after the outage: with a 30-minute
  // recovery delay there is nothing left to recover.
  std::vector<DeploymentRequest> reqs = {
      request(0, 2 * kDay + 5 * kMinute)};
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const auto stats =
      run_simulation(topo_, fx_.trace, reqs, {}, {{node, 2 * kDay}});
  EXPECT_EQ(stats.vms_failed, 1u);
  EXPECT_EQ(stats.vms_resubmitted, 0u);
}

TEST_F(FailureInjectionTest, VmsEndedBeforeOutageUntouched) {
  std::vector<DeploymentRequest> reqs = {request(0, kDay)};
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const auto stats =
      run_simulation(topo_, fx_.trace, reqs, {}, {{node, 2 * kDay}});
  EXPECT_EQ(stats.vms_failed, 0u);
  EXPECT_EQ(fx_.trace.vms()[0].deleted, kDay);
}

TEST_F(FailureInjectionTest, FailedNodeTakesNoNewVms) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  std::vector<DeploymentRequest> reqs;
  // After the outage, submit many VMs; none may land on the dead node.
  for (int i = 0; i < 20; ++i)
    reqs.push_back(request(3 * kDay + i * kMinute, kNoEnd, 2));
  run_simulation(topo_, fx_.trace, reqs, {}, {{node, 2 * kDay}});
  for (const auto& vm : fx_.trace.vms()) EXPECT_NE(vm.node, node);
}

TEST_F(FailureInjectionTest, OutageFreesCapacityIsNotReusedOnDeadNode) {
  // Fill the region, fail one node, then ask for one more VM: the freed
  // capacity on the dead node must NOT satisfy it, but other removals can.
  std::vector<DeploymentRequest> reqs;
  for (int i = 0; i < 8; ++i) reqs.push_back(request(0, kNoEnd, 16));
  reqs.push_back(request(3 * kDay, kNoEnd, 16));  // after the outage
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  FailurePolicy policy;
  policy.resubmit = false;
  const auto stats = run_simulation(topo_, fx_.trace, reqs, {},
                                    {{node, 2 * kDay}}, policy);
  // The region was full (8 x 16 cores on 8 x 16-core nodes); the outage
  // killed one 16-core VM but its node is gone, so the late request fails.
  EXPECT_EQ(stats.allocation_failures, 1u);
}

TEST_F(FailureInjectionTest, MultipleOutagesCascade) {
  std::vector<DeploymentRequest> reqs = {request(0, kNoEnd)};
  const auto clusters = topo_.clusters_in(RegionId(0), CloudType::kPrivate);
  const NodeId first = topo_.cluster(clusters[0]).nodes[0];
  const NodeId second = topo_.cluster(clusters[0]).nodes[1];
  FailurePolicy policy;
  policy.recovery_delay = kMinute;
  const auto stats = run_simulation(
      topo_, fx_.trace, reqs, {},
      {{first, kDay}, {second, 2 * kDay}}, policy);
  // Original dies at day 1, recovers onto `second` (best fit), which dies
  // at day 2 and recovers again.
  EXPECT_EQ(stats.vms_failed, 2u);
  EXPECT_EQ(stats.vms_resubmitted, 2u);
  ASSERT_EQ(fx_.trace.vms().size(), 3u);
  EXPECT_EQ(fx_.trace.vms()[0].deleted, kDay);
  EXPECT_EQ(fx_.trace.vms()[1].deleted, 2 * kDay);
  EXPECT_EQ(fx_.trace.vms()[2].deleted, kNoEnd);
}

}  // namespace
}  // namespace cloudlens
