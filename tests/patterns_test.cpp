#include "workloads/patterns.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"

namespace cloudlens::workloads {
namespace {

template <typename Model>
std::vector<double> sample_week(const Model& model) {
  const TimeGrid grid = week_telemetry_grid();
  std::vector<double> out(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) out[i] = model.at(grid.at(i));
  return out;
}

TEST(HashNoiseTest, DeterministicAndKeySensitive) {
  EXPECT_DOUBLE_EQ(hash_uniform(1, 5), hash_uniform(1, 5));
  EXPECT_NE(hash_uniform(1, 5), hash_uniform(1, 6));
  EXPECT_NE(hash_uniform(1, 5), hash_uniform(2, 5));
}

TEST(HashNoiseTest, UniformInRange) {
  for (int k = 0; k < 1000; ++k) {
    const double u = hash_uniform(42, k);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashNoiseTest, NormalApproxMoments) {
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int k = 0; k < n; ++k) {
    const double x = hash_normal(7, k);
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(SmoothNoiseTest, ContinuousAcrossAnchors) {
  // Adjacent telemetry samples of smooth noise differ much less than
  // independent draws would.
  double max_jump = 0;
  double prev = smooth_noise(3, 0, kHour);
  for (SimTime t = kTelemetryInterval; t < kDay; t += kTelemetryInterval) {
    const double v = smooth_noise(3, t, kHour);
    max_jump = std::max(max_jump, std::fabs(v - prev));
    prev = v;
  }
  EXPECT_LT(max_jump, 1.0);  // white noise jumps would reach ~4 sigma
}

TEST(DiurnalEnvelopeTest, PeakAndNight) {
  EXPECT_NEAR(diurnal_envelope(14.0, 14.0, 12.0), 1.0, 1e-12);
  EXPECT_NEAR(diurnal_envelope(2.0, 14.0, 12.0), 0.0, 1e-12);
  // Envelope is symmetric around the peak.
  EXPECT_NEAR(diurnal_envelope(12.0, 14.0, 12.0),
              diurnal_envelope(16.0, 14.0, 12.0), 1e-12);
}

TEST(DiurnalEnvelopeTest, WrapsMidnight) {
  // Peak at 23:00: 1:00 is two hours away through midnight.
  EXPECT_NEAR(diurnal_envelope(1.0, 23.0, 12.0),
              diurnal_envelope(21.0, 23.0, 12.0), 1e-12);
}

TEST(DiurnalUtilizationTest, DeterministicGivenSeed) {
  DiurnalUtilization::Params p;
  const DiurnalUtilization a(p, 11), b(p, 11), c(p, 12);
  EXPECT_DOUBLE_EQ(a.at(kHour), b.at(kHour));
  EXPECT_NE(a.at(kHour), c.at(kHour));
}

TEST(DiurnalUtilizationTest, StaysInUnitInterval) {
  DiurnalUtilization::Params p;
  p.noise_sigma = 0.2;  // exaggerate noise to probe clamping
  const DiurnalUtilization model(p, 1);
  for (const double v : sample_week(model)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(DiurnalUtilizationTest, DaytimeAboveNight) {
  DiurnalUtilization::Params p;  // peak at 14:00, base 0.05, peak 0.6
  const DiurnalUtilization model(p, 2);
  // Tuesday 14:00 vs Tuesday 03:00.
  const double day = model.at(kDay + 14 * kHour);
  const double night = model.at(kDay + 3 * kHour);
  EXPECT_GT(day, night + 0.3);
}

TEST(DiurnalUtilizationTest, WeekdayPeakAboveWeekendPeak) {
  DiurnalUtilization::Params p;
  const DiurnalUtilization model(p, 3);
  const double weekday = model.at(2 * kDay + 14 * kHour);  // Wednesday
  const double weekend = model.at(5 * kDay + 14 * kHour);  // Saturday
  EXPECT_GT(weekday, weekend + 0.2);
}

TEST(DiurnalUtilizationTest, TimeZoneShiftsPeak) {
  DiurnalUtilization::Params east = {};
  east.tz_offset_hours = 0;
  east.noise_sigma = 0.0;
  DiurnalUtilization::Params west = east;
  west.tz_offset_hours = -6;
  const DiurnalUtilization e(east, 4), w(west, 4);
  // At sim-clock 14:00 the east model peaks; the west model (six hours
  // behind) reads 08:00 local and is below peak.
  EXPECT_GT(e.at(14 * kHour), w.at(14 * kHour) + 0.15);
  // The west model peaks six hours later on the sim clock.
  EXPECT_NEAR(w.at(20 * kHour), e.at(14 * kHour), 0.05);
}

TEST(StableUtilizationTest, LowStddevAroundLevel) {
  StableUtilization::Params p;
  p.level = 0.3;
  const StableUtilization model(p, 5);
  const auto xs = sample_week(model);
  EXPECT_NEAR(stats::mean(xs), 0.3, 0.02);
  EXPECT_LT(stats::stddev(xs), 0.04);
}

TEST(IrregularUtilizationTest, MostlyLowWithSpikes) {
  IrregularUtilization::Params p;
  const IrregularUtilization model(p, 6);
  const auto xs = sample_week(model);
  std::size_t low = 0, high = 0;
  for (const double v : xs) {
    if (v < 0.15) ++low;
    if (v > 0.5) ++high;
  }
  // "lower than 10% most of the time, can raise to over 60% for a short
  // time" — most samples low, some spikes present.
  EXPECT_GT(low, xs.size() * 3 / 4);
  EXPECT_GT(high, 0u);
  EXPECT_LT(high, xs.size() / 5);
}

TEST(IrregularUtilizationTest, SpikeProbabilityScalesSpikes) {
  IrregularUtilization::Params rare, frequent;
  rare.spike_prob = 0.01;
  frequent.spike_prob = 0.20;
  const IrregularUtilization a(rare, 7), b(frequent, 7);
  auto count_spikes = [](const std::vector<double>& xs) {
    std::size_t n = 0;
    for (const double v : xs)
      if (v > 0.5) ++n;
    return n;
  };
  EXPECT_GT(count_spikes(sample_week(b)), 2 * count_spikes(sample_week(a)));
}

TEST(HourlyPeakUtilizationTest, PeaksAtMarksDuringDay) {
  HourlyPeakUtilization::Params p;
  p.noise_sigma = 0.0;
  const HourlyPeakUtilization model(p, 8);
  // Tuesday 13:00 (on the hour, envelope near peak) vs 13:15 (between).
  const double at_mark = model.at(kDay + 13 * kHour);
  const double between = model.at(kDay + 13 * kHour + 15 * kMinute);
  EXPECT_GT(at_mark, between + 0.3);
}

TEST(HourlyPeakUtilizationTest, HalfHourPeakSmaller) {
  HourlyPeakUtilization::Params p;
  p.noise_sigma = 0.0;
  p.half_hour_peak_scale = 0.5;
  const HourlyPeakUtilization model(p, 9);
  const double on_hour = model.at(kDay + 13 * kHour);
  const double on_half = model.at(kDay + 13 * kHour + 30 * kMinute);
  EXPECT_GT(on_hour, on_half);
  EXPECT_GT(on_half, model.at(kDay + 13 * kHour + 15 * kMinute));
}

TEST(HourlyPeakUtilizationTest, NightPeaksSuppressed) {
  HourlyPeakUtilization::Params p;
  p.noise_sigma = 0.0;
  const HourlyPeakUtilization model(p, 10);
  const double day_peak = model.at(kDay + 13 * kHour);
  const double night_peak = model.at(kDay + 2 * kHour);
  EXPECT_GT(day_peak, night_peak + 0.3);
}

TEST(GroundTruthPatternTest, ReportsPlantedType) {
  const DiurnalUtilization diurnal({}, 1);
  const StableUtilization stable({}, 2);
  const IrregularUtilization irregular({}, 3);
  const HourlyPeakUtilization hourly({}, 4);
  EXPECT_EQ(ground_truth_pattern(&diurnal), PatternType::kDiurnal);
  EXPECT_EQ(ground_truth_pattern(&stable), PatternType::kStable);
  EXPECT_EQ(ground_truth_pattern(&irregular), PatternType::kIrregular);
  EXPECT_EQ(ground_truth_pattern(&hourly), PatternType::kHourlyPeak);
  const ConstantUtilization constant(0.5);
  EXPECT_FALSE(ground_truth_pattern(&constant).has_value());
}

TEST(PatternTypeTest, ToString) {
  EXPECT_EQ(to_string(PatternType::kDiurnal), "diurnal");
  EXPECT_EQ(to_string(PatternType::kStable), "stable");
  EXPECT_EQ(to_string(PatternType::kIrregular), "irregular");
  EXPECT_EQ(to_string(PatternType::kHourlyPeak), "hourly-peak");
}

}  // namespace
}  // namespace cloudlens::workloads
