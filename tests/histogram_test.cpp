#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace cloudlens::stats {
namespace {

TEST(BinAxisTest, LinearIndexing) {
  BinAxis axis(0, 10, 5, BinScale::kLinear);
  EXPECT_EQ(axis.index(0.0), 0u);
  EXPECT_EQ(axis.index(1.9), 0u);
  EXPECT_EQ(axis.index(2.0), 1u);
  EXPECT_EQ(axis.index(9.99), 4u);
}

TEST(BinAxisTest, ClampsOutOfRange) {
  BinAxis axis(0, 10, 5, BinScale::kLinear);
  EXPECT_EQ(axis.index(-5.0), 0u);
  EXPECT_EQ(axis.index(10.0), 4u);
  EXPECT_EQ(axis.index(1e9), 4u);
}

TEST(BinAxisTest, LinearEdges) {
  BinAxis axis(0, 10, 5, BinScale::kLinear);
  EXPECT_DOUBLE_EQ(axis.lower_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(axis.upper_edge(0), 2.0);
  EXPECT_DOUBLE_EQ(axis.lower_edge(4), 8.0);
  EXPECT_DOUBLE_EQ(axis.upper_edge(4), 10.0);
  EXPECT_DOUBLE_EQ(axis.center(2), 5.0);
}

TEST(BinAxisTest, LogIndexing) {
  BinAxis axis(1, 1024, 10, BinScale::kLog);
  EXPECT_EQ(axis.index(1.0), 0u);
  EXPECT_EQ(axis.index(1.5), 0u);
  // Probe just inside the second bin (the exact edge 2.0 is FP-sensitive).
  EXPECT_EQ(axis.index(2.001), 1u);
  EXPECT_EQ(axis.index(3.9), 1u);
  EXPECT_EQ(axis.index(1000.0), 9u);
  EXPECT_EQ(axis.index(0.5), 0u);  // below lo clamps
}

TEST(BinAxisTest, LogEdgesGeometric) {
  BinAxis axis(1, 100, 2, BinScale::kLog);
  EXPECT_NEAR(axis.upper_edge(0), 10.0, 1e-9);
  EXPECT_NEAR(axis.lower_edge(1), 10.0, 1e-9);
  EXPECT_NEAR(axis.center(0), std::sqrt(1.0 * 10.0), 1e-9);
}

TEST(BinAxisTest, InvalidArgsThrow) {
  EXPECT_THROW(BinAxis(0, 10, 0, BinScale::kLinear), cloudlens::CheckError);
  EXPECT_THROW(BinAxis(5, 5, 3, BinScale::kLinear), cloudlens::CheckError);
  EXPECT_THROW(BinAxis(0, 10, 3, BinScale::kLog), cloudlens::CheckError);
}

TEST(Histogram1DTest, CountsAndWeights) {
  Histogram1D h(0, 10, 5);
  h.add(1.0);
  h.add(1.5);
  h.add(9.0, 2.0);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.weights()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.weights()[4], 2.0);
}

TEST(Histogram1DTest, NormalizedSumsToOne) {
  Histogram1D h(0, 1, 4);
  h.add(0.1);
  h.add(0.4);
  h.add(0.9);
  const auto norm = h.normalized();
  EXPECT_NEAR(std::accumulate(norm.begin(), norm.end(), 0.0), 1.0, 1e-12);
}

TEST(Histogram1DTest, CumulativeMonotoneEndsAtOne) {
  Histogram1D h(0, 1, 10);
  for (double x = 0.05; x < 1.0; x += 0.1) h.add(x);
  const auto cum = h.cumulative();
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  EXPECT_NEAR(cum.back(), 1.0, 1e-12);
}

TEST(Histogram1DTest, EmptyNormalizedAllZero) {
  Histogram1D h(0, 1, 4);
  for (double v : h.normalized()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Histogram1DTest, DefaultConstructedAddThrows) {
  Histogram1D h;
  EXPECT_THROW(h.add(0.5), cloudlens::CheckError);
}

TEST(Histogram2DTest, CellPlacement) {
  Histogram2D h(BinAxis(0, 10, 2, BinScale::kLinear),
                BinAxis(0, 10, 2, BinScale::kLinear));
  h.add(1, 1);   // (0, 0)
  h.add(7, 1);   // (1, 0)
  h.add(7, 8);   // (1, 1)
  h.add(7, 8);   // (1, 1)
  EXPECT_DOUBLE_EQ(h.weight_at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h.weight_at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(h.weight_at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(h.weight_at(0, 1), 0.0);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(Histogram2DTest, NormalizedGridMaxIsOne) {
  Histogram2D h(BinAxis(0, 4, 2, BinScale::kLinear),
                BinAxis(0, 4, 2, BinScale::kLinear));
  h.add(1, 1);
  h.add(1, 1);
  h.add(3, 3);
  const auto grid = h.normalized_grid();
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid[0][0], 1.0);
  EXPECT_DOUBLE_EQ(grid[1][1], 0.5);
}

TEST(Histogram2DTest, EmptyGridAllZero) {
  Histogram2D h(BinAxis(0, 4, 2, BinScale::kLinear),
                BinAxis(0, 4, 2, BinScale::kLinear));
  for (const auto& row : h.normalized_grid())
    for (double v : row) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace cloudlens::stats
