// Out-of-core population shard store tests: conversion round-trips the
// records/subscriptions/indices bit-for-bit, the streaming build path
// (generator-order appends) produces the same router digest as
// conversion, budget-driven eviction, warm spill-file reuse, the
// TraceStore population-sharded mode contract, failure paths (unwritable
// spill dir, disk-full short write, truncated shard file), concurrent
// shard acquisition (TSan-policed in the sanitizer CI flavour), and the
// analyses staying byte-identical to the resident path at any thread
// count.
#include "cloudsim/population.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/context.h"
#include "analysis/figures.h"
#include "analysis/report.h"
#include "cloudsim/trace.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "workloads/generator.h"
#include "workloads/pattern_snapshot.h"

namespace cloudlens {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Unique spill directory under the system temp dir; removed on scope
/// exit unless the store already cleaned it.
class TempSpillDir {
 public:
  explicit TempSpillDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("cloudlens-poptest-" + tag))
                .string();
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ~TempSpillDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

PopulationShardingOptions spill_options(const std::string& dir,
                                        std::uint32_t shards) {
  PopulationShardingOptions opts;
  opts.shards = shards;
  opts.spill_dir = dir;
  opts.model_codec = &workloads::pattern_snapshot_codec();
  return opts;
}

/// Report + every figure CSV, concatenated — the user-visible output set.
std::string rendered_outputs(const TraceStore& trace,
                             const ParallelConfig& parallel) {
  const AnalysisContext ctx(trace, parallel);
  std::ostringstream out;
  analysis::write_characterization_report(ctx, out);
  std::ostringstream figure;
  analysis::write_figure_csvs(ctx, [&](const std::string& name) -> std::ostream& {
    figure << "\n== " << name << " ==\n";
    return figure;
  });
  out << figure.str();
  return out.str();
}

class PopulationGeneratedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::ScenarioOptions options;
    options.scale = 0.03;
    options.seed = 17;
    scenario_ = new workloads::Scenario(workloads::make_scenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static workloads::Scenario* scenario_;
};

workloads::Scenario* PopulationGeneratedTest::scenario_ = nullptr;

TEST_F(PopulationGeneratedTest, ConversionRoundTripsRecordsAndIndices) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir dir("roundtrip");
  auto store = PopulationShardStore::build(trace, spill_options(dir.path(), 7));
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->shard_count(), 7u);
  EXPECT_EQ(store->vm_count(), trace.vms().size());
  EXPECT_EQ(store->subscription_count(), trace.subscriptions().size());

  const TimeGrid& grid = trace.telemetry_grid();
  for (std::size_t v = 0; v < trace.vms().size(); v += 13) {
    const VmRecord& a = trace.vms()[v];
    const VmRecord& b = store->record(VmId(static_cast<VmId::underlying>(v)));
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.subscription, a.subscription);
    EXPECT_EQ(b.service, a.service);
    EXPECT_EQ(b.cloud, a.cloud);
    EXPECT_EQ(b.party, a.party);
    EXPECT_EQ(b.region, a.region);
    EXPECT_EQ(b.cluster, a.cluster);
    EXPECT_EQ(b.rack, a.rack);
    EXPECT_EQ(b.node, a.node);
    EXPECT_EQ(bits(b.cores), bits(a.cores));
    EXPECT_EQ(bits(b.memory_gb), bits(a.memory_gb));
    EXPECT_EQ(b.created, a.created);
    EXPECT_EQ(b.deleted, a.deleted);
    ASSERT_EQ(b.utilization != nullptr, a.utilization != nullptr);
    if (a.utilization != nullptr) {
      // Parametric models round-trip exactly through the pattern codec:
      // identical samples at every probed tick.
      for (std::size_t i = 0; i < grid.count; i += 37) {
        const SimTime t = grid.at(i);
        EXPECT_EQ(bits(b.utilization->at(t)), bits(a.utilization->at(t)))
            << "vm " << v << " tick " << i;
      }
    }
  }

  for (std::size_t s = 0; s < trace.subscriptions().size(); ++s) {
    const SubscriptionInfo& a = trace.subscriptions()[s];
    const SubscriptionInfo& b = store->subscription(
        SubscriptionId(static_cast<SubscriptionId::underlying>(s)));
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.cloud, a.cloud);
    EXPECT_EQ(b.party, a.party);
    EXPECT_EQ(b.service, a.service);
  }

  // Per-subscription and per-node indices match the resident ones.
  for (std::size_t s = 0; s < trace.subscriptions().size(); s += 5) {
    const SubscriptionId id(static_cast<SubscriptionId::underlying>(s));
    const auto a = trace.vms_of_subscription(id);
    const auto b = store->vms_of_subscription(id);
    ASSERT_EQ(a.size(), b.size()) << "subscription " << s;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::size_t nodes_checked = 0;
  for (std::size_t v = 0; v < trace.vms().size() && nodes_checked < 25;
       v += 11) {
    const NodeId node = trace.vms()[v].node;
    if (!node.valid()) continue;
    ++nodes_checked;
    const auto a = trace.vms_on_node(node);
    const auto b = store->vms_on_node(node);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  EXPECT_GT(nodes_checked, 0u);
}

TEST_F(PopulationGeneratedTest, WarmStartReusesSpillFilesWithMatchingDigest) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir dir("warm");
  auto opts = spill_options(dir.path(), 4);
  opts.keep_files = true;

  auto& metrics = obs::MetricsRegistry::global();
  metrics.reset();
  metrics.set_enabled(true);

  std::uint64_t digest = 0;
  {
    auto cold = PopulationShardStore::build(trace, opts);
    digest = cold->router_digest();
    EXPECT_EQ(metrics.snapshot().counter("population.shard_spills"), 4u);
  }
  // Files survived (keep_files) and the second build adopts them: no new
  // spills, identical digest, identical records.
  {
    auto warm = PopulationShardStore::build(trace, opts);
    EXPECT_EQ(warm->router_digest(), digest);
    EXPECT_EQ(metrics.snapshot().counter("population.shard_spills"), 4u);
    const VmRecord& a = trace.vms()[0];
    const VmRecord& b = warm->record(VmId(0));
    EXPECT_EQ(b.subscription, a.subscription);
    EXPECT_EQ(b.created, a.created);
  }
  metrics.set_enabled(false);
}

TEST_F(PopulationGeneratedTest, StreamingBuildMatchesConversionDigest) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir conv_dir("digest-conv");
  auto conversion =
      PopulationShardStore::build(trace, spill_options(conv_dir.path(), 5));

  // Stream the same records through the builder path in id order — the
  // order the generator/ingest backends append them.
  TempSpillDir stream_dir("digest-stream");
  PopulationShardStore streamed(trace.telemetry_grid(),
                                spill_options(stream_dir.path(), 5));
  for (const VmRecord& vm : trace.vms()) streamed.append_vm(vm);
  streamed.finalize_spill(trace.subscriptions());

  EXPECT_EQ(streamed.router_digest(), conversion->router_digest());
  EXPECT_EQ(streamed.vm_count(), conversion->vm_count());
  EXPECT_EQ(streamed.subscription_count(), conversion->subscription_count());
  for (std::size_t v = 0; v < streamed.vm_count(); v += 17) {
    const VmId id(static_cast<VmId::underlying>(v));
    const VmRecord& a = conversion->record(id);
    const VmRecord& b = streamed.record(id);
    EXPECT_EQ(b.subscription, a.subscription);
    EXPECT_EQ(b.node, a.node);
    EXPECT_EQ(b.created, a.created);
    EXPECT_EQ(b.deleted, a.deleted);
  }
}

TEST_F(PopulationGeneratedTest, EvictionRespectsBudgetAndCountsPages) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir dir("evict");
  auto opts = spill_options(dir.path(), 5);
  opts.budget_bytes = 0;  // at most one resident shard after eviction
  auto store = PopulationShardStore::build(trace, opts);

  auto& metrics = obs::MetricsRegistry::global();
  metrics.reset();
  metrics.set_enabled(true);
  const auto before = metrics.snapshot();

  // Touch every shard: all five decode and stay resident until eviction.
  for (std::uint32_t s = 0; s < store->shard_count(); ++s) {
    EXPECT_FALSE(store->view(s).vms().empty());
  }
  EXPECT_GT(store->resident_bytes(), 0u);
  const std::size_t all_resident = store->resident_bytes();

  store->evict_over_budget();
  // Budget 0 keeps at most the most-recently-used shard resident.
  EXPECT_LT(store->resident_bytes(), all_resident);
  EXPECT_LE(store->resident_bytes(), all_resident / 5 + 4096);

  store->evict_all();
  EXPECT_EQ(store->resident_bytes(), 0u);

  const auto after = metrics.snapshot();
  metrics.set_enabled(false);
  EXPECT_GE(after.counter("population.shard_page_ins") -
                before.counter("population.shard_page_ins"),
            5u);
  EXPECT_GE(after.counter("population.shard_evictions") -
                before.counter("population.shard_evictions"),
            5u);
}

TEST_F(PopulationGeneratedTest, ConcurrentAcquireIsCleanAcrossEvictions) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir dir("concurrent");
  auto store = PopulationShardStore::build(trace, spill_options(dir.path(), 6));

  // Parallel region: every worker reads records from every shard; the
  // first toucher of a shard decodes it and publishes the view with a
  // release-store. Evictions happen only at the serial points between
  // rounds. TSan polices this schedule in the sanitizer CI flavour.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> sum{0};
    for (int w = 0; w < 8; ++w) {
      workers.emplace_back([&store, &trace, w, &sum] {
        std::uint64_t local = 0;
        for (std::size_t v = static_cast<std::size_t>(w);
             v < trace.vms().size(); v += 8) {
          const VmRecord& rec =
              store->record(VmId(static_cast<VmId::underlying>(v)));
          local += rec.subscription.value();
        }
        sum.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& t : workers) t.join();
    std::uint64_t expected = 0;
    for (const VmRecord& vm : trace.vms()) expected += vm.subscription.value();
    EXPECT_EQ(sum.load(), expected);
    store->evict_all();  // serial point
  }
}

TEST_F(PopulationGeneratedTest, TraceStorePopulationShardedModeContract) {
  // Private scenario copy: set_population_sharding converts the trace
  // permanently (the resident vectors are released).
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 23;
  auto scenario = workloads::make_scenario(options);
  TraceStore& trace = *scenario.trace;
  const std::size_t vm_count = trace.vms().size();
  const std::size_t sub_count = trace.subscriptions().size();
  const VmRecord resident_first = trace.vms()[0];

  TempSpillDir dir("mode");
  trace.set_population_sharding(spill_options(dir.path(), 3));

  EXPECT_TRUE(trace.population_sharded());
  ASSERT_NE(trace.population_shards(), nullptr);
  EXPECT_EQ(trace.population_shards()->shard_count(), 3u);
  // The resident spans are unreachable; counts and per-id accessors work.
  EXPECT_THROW(trace.vms(), CheckError);
  EXPECT_THROW(trace.subscriptions(), CheckError);
  EXPECT_EQ(trace.vm_count(), vm_count);
  EXPECT_EQ(trace.subscription_count(), sub_count);
  EXPECT_EQ(trace.vm(VmId(0)).subscription, resident_first.subscription);
  // No resident per-VM matrix of any kind in population mode.
  EXPECT_EQ(trace.telemetry_panel(), nullptr);
}

TEST(PopulationFailure, UnwritableSpillDirThrows) {
  TempSpillDir dir("unwritable");
  std::filesystem::create_directories(dir.path());
  // A regular file where a directory component must go: create_directories
  // cannot succeed, even for root (unlike permission-bit schemes).
  const std::string blocker = dir.path() + "/blocker";
  std::ofstream(blocker).put('x');
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 23;
  auto scenario = workloads::make_scenario(options);
  PopulationShardingOptions opts = spill_options(blocker + "/shards", 2);
  EXPECT_THROW(PopulationShardStore::build(*scenario.trace, opts), CheckError);
}

#if defined(__linux__)
TEST(PopulationFailure, ShortWriteOnSpillThrows) {
  // Simulate ENOSPC: route shard 0's record spill log to /dev/full, where
  // every flush fails. The store must surface a CheckError (at the append
  // that notices the failed flush, or at seal time) instead of sealing a
  // truncated shard.
  TempSpillDir dir("enospc");
  std::filesystem::create_directories(dir.path());
  std::filesystem::create_symlink("/dev/full",
                                  dir.path() + "/pop-shard-0.clsn.records.log");
  TimeGrid grid = week_telemetry_grid();
  PopulationShardStore store(grid, spill_options(dir.path(), 1));
  EXPECT_THROW(
      {
        // ~6000 64-byte records overflow the staging buffer mid-append;
        // smaller runs fail at the seal-time force flush.
        for (int i = 0; i < 6000; ++i) {
          VmRecord vm;
          vm.subscription = SubscriptionId(0);
          store.append_vm(vm);
        }
        std::vector<SubscriptionInfo> subs(1);
        subs[0].id = SubscriptionId(0);
        store.finalize_spill(subs);
      },
      CheckError);
}
#endif

TEST(PopulationFailure, TruncatedShardFileThrows) {
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 23;
  auto scenario = workloads::make_scenario(options);
  TempSpillDir dir("truncated");
  auto store =
      PopulationShardStore::build(*scenario.trace, spill_options(dir.path(), 2));
  store->evict_all();
  // Chop a sealed shard file in half behind the store's back: the next
  // page-in must fail loudly, not decode garbage.
  const std::string shard0 = dir.path() + "/pop-shard-0.clsn";
  const auto size = std::filesystem::file_size(shard0);
  ASSERT_GT(size, 0u);
  std::filesystem::resize_file(shard0, size / 2);
  EXPECT_THROW(store->view(0), CheckError);
}

TEST(PopulationAnalyses, ByteIdenticalToResidentAtAnyThreadCount) {
  workloads::ScenarioOptions options;
  options.scale = 0.03;
  options.seed = 29;
  auto scenario = workloads::make_scenario(options);
  TraceStore& trace = *scenario.trace;

  const std::string resident =
      rendered_outputs(trace, ParallelConfig::with_threads(2));

  TempSpillDir dir("analyses");
  auto opts = spill_options(dir.path(), 6);
  opts.budget_bytes = 0;  // evict to a single shard at every serial point
  trace.set_population_sharding(opts);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    const std::string sharded =
        rendered_outputs(trace, ParallelConfig::with_threads(threads));
    EXPECT_EQ(sharded, resident);
  }
}

}  // namespace
}  // namespace cloudlens
