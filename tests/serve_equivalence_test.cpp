// The serve determinism contract, pinned to bytes: a trace replayed
// through the streaming engine answers every query — characterization
// report, insight verdicts, classifier shares, figure CSVs, knowledge
// base — byte-identically to the batch pipeline over the same data, at
// any thread count; mid-stream queries see epoch-aligned snapshots that
// match a batch import of the same event prefix; checkpoints resume
// byte-identically; and concurrent ingest + queries stay consistent
// (this file runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/figures.h"
#include "analysis/insights.h"
#include "analysis/report.h"
#include "cloudsim/trace.h"
#include "cloudsim/trace_io.h"
#include "ingest/ingest.h"
#include "kb/extractor.h"
#include "kb/refresh.h"
#include "kb/store.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/stream.h"
#include "workloads/generator.h"

namespace cloudlens::serve {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const auto comma = line.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

/// Everything a serve query can return, rendered from a batch trace with
/// the exact recipe the engine uses (same options, same framing).
struct Products {
  std::string report;
  std::string insights;
  std::string shares_private;
  std::string shares_public;
  std::string figures;
  std::string kb;
};

std::string render_shares(const AnalysisContext& ctx, CloudType cloud) {
  const auto s = analysis::classify_population(ctx, cloud, 800);
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s,%.17g,%.17g,%.17g,%.17g,%zu\n",
                std::string(to_string(cloud)).c_str(), s.diurnal, s.stable,
                s.irregular, s.hourly_peak, s.classified);
  return std::string("cloud,diurnal,stable,irregular,hourly_peak,classified\n") +
         buf;
}

std::string render_figures(const AnalysisContext& ctx) {
  std::ostringstream current;
  std::string name_open;
  std::ostringstream all;
  const auto open = [&](const std::string& name) -> std::ostream& {
    if (!name_open.empty())
      all << "== " << name_open << " ==\n" << current.str();
    current.str({});
    current.clear();
    name_open = name;
    return current;
  };
  analysis::write_figure_csvs(ctx, open);
  if (!name_open.empty()) all << "== " << name_open << " ==\n" << current.str();
  return all.str();
}

Products render_batch(const TraceStore& trace, std::size_t threads) {
  const AnalysisContext ctx(trace, ParallelConfig::with_threads(threads));
  Products p;
  {
    std::ostringstream os;
    analysis::write_characterization_report(ctx, os);
    p.report = os.str();
  }
  p.insights = analysis::render_insights(analysis::evaluate_insights(ctx));
  p.shares_private = render_shares(ctx, CloudType::kPrivate);
  p.shares_public = render_shares(ctx, CloudType::kPublic);
  p.figures = render_figures(ctx);
  p.kb = kb::KnowledgeBase(kb::extract_all(ctx)).to_csv();
  return p;
}

void expect_queries_match(ServeEngine& engine, const Products& want) {
  EXPECT_EQ(engine.query("report"), want.report);
  EXPECT_EQ(engine.query("insights"), want.insights);
  EXPECT_EQ(engine.query("shares,private"), want.shares_private);
  EXPECT_EQ(engine.query("shares,public"), want.shares_public);
  EXPECT_EQ(engine.query("figures"), want.figures);
  EXPECT_EQ(engine.query("kb"), want.kb);
}

/// Shared fixture: one generated scenario exported to CSVs (with a lossy
/// utilization cap, as real exports are), re-imported as the batch trace,
/// and rendered as the event stream. Built once per suite — the analyses
/// behind render_batch are the expensive part.
class ServeEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::ScenarioOptions options;
    options.scale = 0.04;
    options.seed = 7;
    const auto scenario = workloads::make_scenario(options);
    {
      std::ostringstream topo, vmt, util;
      export_topology(*scenario.topology, topo);
      export_vm_table(*scenario.trace, vmt);
      TraceExportOptions ex;
      ex.max_vms_with_utilization = 400;
      export_utilization(*scenario.trace, util, ex);
      topo_csv_ = new std::string(topo.str());
      vm_csv_ = new std::string(vmt.str());
      util_csv_ = new std::string(util.str());
    }
    std::istringstream topo_in(*topo_csv_), vm_in(*vm_csv_), util_in(*util_csv_);
    batch_ = new ImportedTrace(import_trace(topo_in, vm_in, &util_in));
    std::ostringstream stream;
    write_event_stream(*batch_->topology, *batch_->trace, stream);
    lines_ = new std::vector<std::string>(split_lines(stream.str()));
    reference_ = new Products(render_batch(*batch_->trace, 1));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete lines_;
    delete reference_;
    delete topo_csv_;
    delete vm_csv_;
    delete util_csv_;
    batch_ = nullptr;
    lines_ = nullptr;
    reference_ = nullptr;
    topo_csv_ = vm_csv_ = util_csv_ = nullptr;
  }

  static void feed_all(ServeEngine& engine) {
    for (const auto& line : *lines_) engine.ingest_line(line);
  }

  static ImportedTrace* batch_;
  static std::vector<std::string>* lines_;
  static Products* reference_;
  static std::string* topo_csv_;
  static std::string* vm_csv_;
  static std::string* util_csv_;
};

ImportedTrace* ServeEquivalenceTest::batch_ = nullptr;
std::vector<std::string>* ServeEquivalenceTest::lines_ = nullptr;
Products* ServeEquivalenceTest::reference_ = nullptr;
std::string* ServeEquivalenceTest::topo_csv_ = nullptr;
std::string* ServeEquivalenceTest::vm_csv_ = nullptr;
std::string* ServeEquivalenceTest::util_csv_ = nullptr;

TEST_F(ServeEquivalenceTest, FullStreamByteMatchesBatchAtAnyThreadCount) {
  // The batch side itself is thread-invariant (regression guard for the
  // context-first analysis entry points).
  EXPECT_EQ(render_batch(*batch_->trace, 8).report, reference_->report);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ServeOptions options;
    options.parallel = ParallelConfig::with_threads(threads);
    ServeEngine engine(options);
    feed_all(engine);
    EXPECT_EQ(engine.epoch(), batch_->trace->telemetry_grid().count);
    expect_queries_match(engine, *reference_);

    // Structural identity, not just rendered outputs: the snapshot's VM
    // table and every utilization sample byte-match the batch trace.
    const auto snap = engine.snapshot_trace();
    std::ostringstream got_vm, want_vm, got_util, want_util;
    export_vm_table(*snap, got_vm);
    export_vm_table(*batch_->trace, want_vm);
    EXPECT_EQ(got_vm.str(), want_vm.str());
    TraceExportOptions all_vms;
    all_vms.max_vms_with_utilization = 0;
    export_utilization(*snap, got_util, all_vms);
    export_utilization(*batch_->trace, want_util, all_vms);
    EXPECT_EQ(got_util.str(), want_util.str());
  }
}

TEST_F(ServeEquivalenceTest, MidStreamQueriesAreEpochAlignedPrefixSnapshots) {
  const TimeGrid& grid = batch_->trace->telemetry_grid();
  const std::size_t target_epoch = grid.count / 2;
  const SimTime cut = grid.at(target_epoch);

  // Feed every event before the cutoff, then exactly one event at or past
  // it: the engine is now mid-tick at epoch `target_epoch`.
  ServeEngine engine;
  std::size_t i = 0;
  for (; i < lines_->size(); ++i) {
    const auto ts = event_timestamp((*lines_)[i]);
    if (ts && *ts >= cut) break;
    engine.ingest_line((*lines_)[i]);
  }
  ASSERT_LT(i, lines_->size());
  engine.ingest_line((*lines_)[i]);
  ++i;
  ASSERT_EQ(engine.epoch(), target_epoch);
  ASSERT_EQ(engine.cutoff(), cut);
  const std::string mid_report = engine.query("report");
  const std::string mid_kb = engine.query("kb");

  // Epoch isolation: more events from the same (incomplete) tick must not
  // move a byte of any answer.
  std::size_t same_tick_events = 0;
  for (; i < lines_->size(); ++i) {
    const auto ts = event_timestamp((*lines_)[i]);
    if (ts && *ts >= cut + grid.step) break;
    if (ts) ++same_tick_events;
    engine.ingest_line((*lines_)[i]);
  }
  ASSERT_GT(same_tick_events, 0u);
  EXPECT_EQ(engine.epoch(), target_epoch);
  EXPECT_EQ(engine.query("report"), mid_report);
  EXPECT_EQ(engine.query("kb"), mid_kb);

  // The mid-stream snapshot is exactly what the batch importer builds
  // from the same event prefix: vmtable rows created before the cutoff
  // (deletions at or past it blanked), utilization rows before it.
  // Surviving VMs are renumbered densely in original-id order (the
  // importer demands dense ids; the engine snapshot renumbers the same
  // way), and utilization rows follow the remap.
  std::ostringstream prefix_vm, prefix_util;
  std::map<std::string, std::size_t> renumber;
  {
    const auto rows = split_lines(*vm_csv_);
    prefix_vm << rows.front() << '\n';
    for (std::size_t r = 1; r < rows.size(); ++r) {
      auto f = split_fields(rows[r]);
      if (std::stoll(f[11]) >= cut) continue;
      if (!f[12].empty() && std::stoll(f[12]) >= cut) f[12].clear();
      const std::size_t dense = renumber.size();
      renumber[f[0]] = dense;
      f[0] = std::to_string(dense);
      for (std::size_t c = 0; c < f.size(); ++c) {
        if (c) prefix_vm << ',';
        prefix_vm << f[c];
      }
      prefix_vm << '\n';
    }
  }
  {
    const auto rows = split_lines(*util_csv_);
    prefix_util << rows.front() << '\n';
    for (std::size_t r = 1; r < rows.size(); ++r) {
      auto f = split_fields(rows[r]);
      if (std::stoll(f[1]) >= cut) continue;
      const auto it = renumber.find(f[0]);
      if (it == renumber.end()) continue;  // VM not created before the cut
      prefix_util << it->second << ',' << f[1] << ',' << f[2] << '\n';
    }
  }
  std::istringstream topo_in(*topo_csv_);
  std::istringstream vm_in(prefix_vm.str());
  std::istringstream util_in(prefix_util.str());
  const auto prefix = import_trace(topo_in, vm_in, &util_in, grid);
  const Products want = render_batch(*prefix.trace, 1);
  EXPECT_EQ(mid_report, want.report);
  EXPECT_EQ(mid_kb, want.kb);
  EXPECT_EQ(engine.query("figures"), want.figures);
}

TEST_F(ServeEquivalenceTest, IncrementalKbReusesCleanSubscriptions) {
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  ServeOptions options;
  options.metrics = &metrics;
  ServeEngine engine(options);
  feed_all(engine);

  const auto first = engine.knowledge().to_csv();
  EXPECT_EQ(first, reference_->kb);
  const auto after_first = metrics.snapshot();
  EXPECT_GT(after_first.counter("serve.kb_records_recomputed"), 0u);

  // Same epoch, second pass: every record comes from the per-subscription
  // cache — zero re-extractions, identical bytes.
  const auto second = engine.knowledge().to_csv();
  EXPECT_EQ(second, first);
  const auto after_second = metrics.snapshot();
  EXPECT_EQ(after_second.counter("serve.kb_records_recomputed"),
            after_first.counter("serve.kb_records_recomputed"));
  EXPECT_GT(after_second.counter("serve.kb_records_reused"),
            after_first.counter("serve.kb_records_reused"));
}

TEST_F(ServeEquivalenceTest, RefreshFromServeSnapshotIsThreadInvariant) {
  // Satellite pin: kb::refresh driven by an ingest-built snapshot is
  // byte-identical at 1 and 8 threads (the context overload is the only
  // refresh path left after the API migration).
  ServeEngine engine;
  feed_all(engine);
  const auto snap = engine.snapshot_trace();

  std::string csv_by_threads[2];
  const std::size_t thread_counts[2] = {1, 8};
  for (int t = 0; t < 2; ++t) {
    kb::KnowledgeBase kb;
    const AnalysisContext ctx(*snap,
                              ParallelConfig::with_threads(thread_counts[t]));
    kb::refresh(kb, ctx);
    csv_by_threads[t] = kb.to_csv();
  }
  EXPECT_EQ(csv_by_threads[0], csv_by_threads[1]);
  EXPECT_FALSE(csv_by_threads[0].empty());
}

TEST_F(ServeEquivalenceTest, CheckpointRestoreResumesByteIdentically) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "cloudlens_serve_ckpt").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  ServeOptions options;
  options.checkpoint_dir = dir;
  ServeEngine primary(options);
  const std::size_t half = lines_->size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    primary.ingest_line((*lines_)[i]);
  const SimTime cut = primary.cutoff();
  const std::string path = primary.checkpoint();

  // A fresh engine restores the checkpoint, then replays every event at
  // or past the checkpoint's cutoff (including those the primary had
  // already seen from the incomplete tick).
  ServeEngine restored;
  restored.restore_checkpoint(path);
  for (const auto& line : *lines_) {
    const auto ts = event_timestamp(line);
    if (ts && *ts >= cut) restored.ingest_line(line);
  }
  for (std::size_t i = half; i < lines_->size(); ++i)
    primary.ingest_line((*lines_)[i]);

  EXPECT_EQ(primary.epoch(), restored.epoch());
  EXPECT_EQ(restored.query("report"), reference_->report);
  EXPECT_EQ(restored.query("kb"), reference_->kb);
  EXPECT_EQ(primary.query("report"), restored.query("report"));
  fs::remove_all(dir);
}

TEST(ServeConcurrencyTest, ConcurrentQueriesDuringIngestStayConsistent) {
  // Exercised under TSan in CI: one thread drains the stream while
  // another fires queries. Every answer must be a well-formed product of
  // some complete epoch, and the final answers must match batch. A small
  // dedicated scenario keeps each mid-flight query cheap enough to fire
  // many of them while ingestion is genuinely in progress.
  workloads::ScenarioOptions scenario_options;
  scenario_options.scale = 0.015;
  scenario_options.seed = 3;
  const auto scenario = workloads::make_scenario(scenario_options);
  std::ostringstream topo, vmt, util;
  export_topology(*scenario.topology, topo);
  export_vm_table(*scenario.trace, vmt);
  TraceExportOptions ex;
  ex.max_vms_with_utilization = 100;
  export_utilization(*scenario.trace, util, ex);
  std::istringstream topo_in(topo.str()), vm_in(vmt.str()), util_in(util.str());
  const auto batch = import_trace(topo_in, vm_in, &util_in);
  std::ostringstream stream;
  write_event_stream(*batch.topology, *batch.trace, stream);
  const auto lines = split_lines(stream.str());
  const AnalysisContext batch_ctx(*batch.trace);
  const std::string want_kb =
      kb::KnowledgeBase(kb::extract_all(batch_ctx)).to_csv();

  ServeOptions options;
  options.parallel = ParallelConfig::with_threads(2);
  ServeEngine engine(options);

  std::atomic<bool> done{false};
  std::thread ingester([&] {
    for (const auto& line : lines) engine.ingest_line(line);
    done.store(true);
  });
  // Queries are defined once the first telemetry tick completes; spin on
  // the (cheap, lock-protected) epoch counter until the engine is live.
  while (engine.epoch() == 0 && !done.load()) {}
  std::size_t queries = 0;
  while (!done.load()) {
    const auto kb_csv = engine.knowledge().to_csv();
    // Well-formed mid-flight: the CSV round-trips through the parser.
    const auto parsed = kb::KnowledgeBase::from_csv(kb_csv);
    EXPECT_EQ(parsed.to_csv(), kb_csv);
    ++queries;
  }
  ingester.join();
  EXPECT_GT(queries, 0u);
  EXPECT_EQ(engine.query("kb"), want_kb);
}

TEST(ServeWindowRollTest, RollingWindowFoldsEvictedWeeksIntoLongTermKb) {
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 13;
  options.horizon = 2 * kWeek;
  const auto scenario = workloads::make_scenario(options);
  const TimeGrid& grid = scenario.trace->telemetry_grid();

  std::ostringstream topo, vmt, util;
  export_topology(*scenario.topology, topo);
  export_vm_table(*scenario.trace, vmt);
  TraceExportOptions ex;
  ex.max_vms_with_utilization = 150;
  export_utilization(*scenario.trace, util, ex);
  std::istringstream topo_in(topo.str()), vm_in(vmt.str()), util_in(util.str());
  const auto batch = import_trace(topo_in, vm_in, &util_in, grid);
  std::ostringstream stream;
  write_event_stream(*batch.topology, *batch.trace, stream);
  const auto lines = split_lines(stream.str());

  const auto run = [&lines] {
    ServeOptions o;
    o.window_weeks = 1;
    auto engine = std::make_unique<ServeEngine>(std::move(o));
    for (const auto& line : lines) engine->ingest_line(line);
    return engine;
  };
  const auto engine = run();
  EXPECT_EQ(engine->window_rolls(), 1u);
  // The evicted first week lives on in the long-term knowledge base.
  EXPECT_GT(engine->long_term_knowledge().size(), 0u);
  // Eviction actually frees state: VMs that ended strictly inside week
  // one are gone. (A deletion at exactly the boundary applies after the
  // roll — the triggering event is never evicted by it — so it stays.)
  std::size_t ended_week_one = 0;
  for (const auto& vm : batch.trace->vms()) {
    if (vm.ended() && vm.deleted < kWeek) ++ended_week_one;
  }
  ASSERT_GT(ended_week_one, 0u);
  EXPECT_EQ(engine->resident_vms(),
            batch.trace->vms().size() - ended_week_one);
  // The post-roll window is week two, fully complete.
  EXPECT_EQ(engine->epoch(), static_cast<std::size_t>(kWeek / grid.step));
  EXPECT_FALSE(engine->query("report").empty());

  // Determinism: an identical replay produces identical long-term bytes.
  const auto replay = run();
  EXPECT_EQ(replay->query("kb-longterm"), engine->query("kb-longterm"));
  EXPECT_EQ(replay->query("kb"), engine->query("kb"));
}

}  // namespace
}  // namespace cloudlens::serve
