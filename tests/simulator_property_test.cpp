// Property tests: invariants of the allocator + simulator under randomized
// workload streams.
#include <gtest/gtest.h>

#include <unordered_map>

#include "cloudsim/simulator.h"
#include "common/rng.h"
#include "testutil.h"

namespace cloudlens {
namespace {

struct StreamParams {
  std::uint64_t seed;
  int requests;
  double max_cores;
};

class SimulatorPropertyTest
    : public ::testing::TestWithParam<StreamParams> {};

TEST_P(SimulatorPropertyTest, CapacityNeverExceededAtAnyInstant) {
  const auto params = GetParam();
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  Rng rng(params.seed);

  std::vector<DeploymentRequest> requests;
  for (int i = 0; i < params.requests; ++i) {
    DeploymentRequest req;
    const bool priv = rng.bernoulli(0.5);
    req.request.subscription = priv ? fx.private_sub : fx.public_sub;
    req.request.cloud = priv ? CloudType::kPrivate : CloudType::kPublic;
    req.request.region = RegionId(
        static_cast<RegionId::underlying>(rng.uniform_int(std::uint64_t{2})));
    req.request.cores = 1 + rng.uniform() * (params.max_cores - 1);
    req.request.memory_gb = req.request.cores * 4;
    req.create = static_cast<SimTime>(rng.uniform() * double(kWeek));
    const auto life = static_cast<SimDuration>(
        rng.uniform() * double(2 * kDay) + double(kMinute));
    req.remove = rng.bernoulli(0.2) ? kNoEnd : req.create + life;
    requests.push_back(req);
  }
  const auto stats = run_simulation(topo, fx.trace, requests);
  EXPECT_EQ(stats.placed + stats.allocation_failures, stats.requested);
  EXPECT_EQ(fx.trace.vms().size(), stats.placed);

  // Invariant: at every sampled instant, no node exceeds its capacity and
  // every VM sits on a node of its own cloud and region.
  for (SimTime t = 0; t < kWeek; t += 6 * kHour) {
    for (const auto& node : topo.nodes()) {
      EXPECT_LE(fx.trace.node_used_cores(node.id, t),
                node.total_cores + 1e-9)
          << "node " << node.id << " over capacity at t=" << t;
    }
  }
  for (const auto& vm : fx.trace.vms()) {
    const auto& node = topo.node(vm.node);
    EXPECT_EQ(node.cloud, vm.cloud);
    EXPECT_EQ(node.region, vm.region);
    EXPECT_EQ(node.rack, vm.rack);
    EXPECT_EQ(node.cluster, vm.cluster);
  }
}

TEST_P(SimulatorPropertyTest, ReplayIsDeterministic) {
  const auto params = GetParam();
  const Topology topo = test::tiny_topology();

  auto run_once = [&](TraceStore& trace, SubscriptionId sub) {
    Rng rng(params.seed);
    std::vector<DeploymentRequest> requests;
    for (int i = 0; i < params.requests; ++i) {
      DeploymentRequest req;
      req.request.subscription = sub;
      req.request.cloud = CloudType::kPublic;
      req.request.region = RegionId(0);
      req.request.cores = 1 + rng.uniform() * (params.max_cores - 1);
      req.request.memory_gb = req.request.cores * 2;
      req.create = static_cast<SimTime>(rng.uniform() * double(kWeek));
      req.remove = req.create + kHour;
      requests.push_back(req);
    }
    return run_simulation(topo, trace, requests);
  };

  test::TraceFixture fx_a(topo), fx_b(topo);
  const auto a = run_once(fx_a.trace, fx_a.public_sub);
  const auto b = run_once(fx_b.trace, fx_b.public_sub);
  EXPECT_EQ(a.placed, b.placed);
  ASSERT_EQ(fx_a.trace.vms().size(), fx_b.trace.vms().size());
  for (std::size_t i = 0; i < fx_a.trace.vms().size(); ++i) {
    EXPECT_EQ(fx_a.trace.vms()[i].node, fx_b.trace.vms()[i].node);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, SimulatorPropertyTest,
    ::testing::Values(StreamParams{101, 400, 4.0},
                      StreamParams{202, 800, 8.0},
                      StreamParams{303, 1500, 16.0},
                      StreamParams{404, 2500, 2.0}));

}  // namespace
}  // namespace cloudlens
