#include <gtest/gtest.h>

#include "common/check.h"
#include "policies/deferral.h"
#include "policies/oversub.h"
#include "policies/preprovision.h"
#include "policies/rebalance.h"
#include "policies/spot.h"
#include "stats/descriptive.h"
#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::policies {
namespace {

using workloads::DiurnalUtilization;
using workloads::HourlyPeakUtilization;
using workloads::StableUtilization;

class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  NodeId node_in_region(int region, CloudType cloud, int index = 0) {
    const auto clusters = topo_.clusters_in(RegionId(region), cloud);
    return topo_.cluster(clusters[0]).nodes[index];
  }

  Topology topo_;
  test::TraceFixture fx_;
};

// --- Oversubscription ----------------------------------------------------

TEST_F(PoliciesTest, OversubConstantDemandExactQuantile) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  // Two VMs, 4 cores each, flat 25% utilization: demand = 2 cores.
  for (int i = 0; i < 2; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 4, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.25));
  OversubscriptionOptions options;
  options.max_nodes = 0;
  const auto report =
      evaluate_oversubscription(fx_.trace, CloudType::kPublic, options);
  EXPECT_EQ(report.nodes_evaluated, 1u);
  EXPECT_DOUBLE_EQ(report.baseline_reserved_cores, 8);
  EXPECT_NEAR(report.policy_reserved_cores, 2.0, 1e-9);
  // Reservation shrinks by 75%; effective utilization improves 4x - 1.
  EXPECT_NEAR(report.reservation_shrink, 0.75, 1e-9);
  EXPECT_NEAR(report.utilization_improvement, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.violation_rate, 0.0);
}

TEST_F(PoliciesTest, OversubViolationRateTracksQuantile) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 4, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(
                   DiurnalUtilization::Params{}, 10 + i));
  OversubscriptionOptions options;
  options.max_nodes = 0;
  options.safety_quantile = 0.90;
  const auto report =
      evaluate_oversubscription(fx_.trace, CloudType::kPublic, options);
  EXPECT_NEAR(report.violation_rate, 0.10, 0.02);
}

TEST_F(PoliciesTest, OversubSaferQuantileReservesMore) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 4, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(
                   DiurnalUtilization::Params{}, 20 + i));
  OversubscriptionOptions lax, strict;
  lax.max_nodes = strict.max_nodes = 0;
  lax.safety_quantile = 0.90;
  strict.safety_quantile = 0.999;
  const auto lax_report =
      evaluate_oversubscription(fx_.trace, CloudType::kPublic, lax);
  const auto strict_report =
      evaluate_oversubscription(fx_.trace, CloudType::kPublic, strict);
  EXPECT_GT(strict_report.policy_reserved_cores,
            lax_report.policy_reserved_cores);
  EXPECT_GT(lax_report.utilization_improvement,
            strict_report.utilization_improvement);
}

TEST_F(PoliciesTest, OversubSkipsSingleVmNodes) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));
  const auto report = evaluate_oversubscription(fx_.trace, CloudType::kPublic);
  EXPECT_EQ(report.nodes_evaluated, 0u);
}

// --- Spot -----------------------------------------------------------------

TEST_F(PoliciesTest, SpotCandidateShareByLifetime) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  // 8 short (30 min) + 2 long (1 day), all ended inside the week.
  for (int i = 0; i < 8; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, i * kHour,
               i * kHour + 30 * kMinute);
  for (int i = 0; i < 2; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, i * kDay,
               (i + 1) * kDay);
  const auto report = evaluate_spot_adoption(fx_.trace, CloudType::kPublic);
  EXPECT_EQ(report.ended_vms, 10u);
  EXPECT_EQ(report.candidate_vms, 8u);
  EXPECT_NEAR(report.candidate_share, 0.8, 1e-9);
  // Core-hours: candidates 8 * 0.5h * 2c = 8; total = 8 + 2*24*2 = 104.
  EXPECT_NEAR(report.total_core_hours, 104.0, 1e-9);
  EXPECT_NEAR(report.spot_core_hours, 8.0, 1e-9);
  EXPECT_NEAR(report.cost_savings_fraction, 8.0 * 0.7 / 104.0, 1e-9);
}

TEST_F(PoliciesTest, SpotValleyShare) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  // One VM entirely inside the valley (23:00-01:00), one at midday.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, 23 * kHour,
             23 * kHour + kHour);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, 12 * kHour,
             12 * kHour + kHour);
  const auto report = evaluate_spot_adoption(fx_.trace, CloudType::kPublic);
  EXPECT_NEAR(report.valley_spot_share, 0.5, 1e-9);
}

TEST_F(PoliciesTest, SpotEvictionRateScales) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  for (int i = 0; i < 200; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1,
               (i % 100) * kHour, (i % 100) * kHour + 2 * kHour);
  SpotOptions quiet, harsh;
  quiet.eviction_rate_per_hour = 0.001;
  harsh.eviction_rate_per_hour = 1.0;
  const auto low = evaluate_spot_adoption(fx_.trace, CloudType::kPublic, quiet);
  const auto high = evaluate_spot_adoption(fx_.trace, CloudType::kPublic, harsh);
  EXPECT_LT(low.evicted_share, 0.05);
  EXPECT_GT(high.evicted_share, 0.5);
}

TEST_F(PoliciesTest, SpotEmptyTraceSafe) {
  const auto report = evaluate_spot_adoption(fx_.trace, CloudType::kPublic);
  EXPECT_EQ(report.ended_vms, 0u);
  EXPECT_DOUBLE_EQ(report.cost_savings_fraction, 0.0);
}

// --- Rebalance --------------------------------------------------------------

TEST_F(PoliciesTest, RegionLoadMetrics) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  // Region 0 private: 8 nodes x 16 cores = 128 total cores.
  // 4 cores at 50% + 4 cores at 2% (underutilized).
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.02));
  const auto load = region_load(fx_.trace, CloudType::kPrivate, RegionId(0));
  EXPECT_DOUBLE_EQ(load.total_cores, 128);
  EXPECT_DOUBLE_EQ(load.allocated_cores, 8);
  EXPECT_NEAR(load.used_cores, 4 * 0.5 + 4 * 0.02, 1e-6);
  EXPECT_NEAR(load.core_utilization_rate, 8.0 / 128.0, 1e-9);
  EXPECT_NEAR(load.underutilized_core_pct, 4.0 / 128.0, 1e-9);
}

TEST_F(PoliciesTest, RegionLoadSnapshotRespected) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, 0, kDay,
             std::make_shared<ConstantUtilization>(0.5));
  RebalanceOptions options;
  options.snapshot = 2 * kDay;  // VM already gone
  const auto load =
      region_load(fx_.trace, CloudType::kPrivate, RegionId(0), options);
  EXPECT_DOUBLE_EQ(load.allocated_cores, 0);
}

TEST_F(PoliciesTest, RecommendAndEvaluateShift) {
  // Service X: region-agnostic, low utilization, big footprint in region 0.
  ServiceInfo svc;
  svc.cloud = CloudType::kPrivate;
  svc.region_agnostic = true;
  const ServiceId service = fx_.trace.add_service(svc);
  SubscriptionInfo sub_info;
  sub_info.cloud = CloudType::kPrivate;
  sub_info.party = PartyType::kFirstParty;
  sub_info.service = service;
  const SubscriptionId sub = fx_.trace.add_subscription(sub_info);

  DiurnalUtilization::Params low;
  low.base = 0.02;
  low.weekday_peak = 0.12;
  low.weekend_peak = 0.05;
  low.tz_offset_hours = -5;

  auto add_service_vm = [&](int region, int node_index, std::uint64_t seed) {
    const NodeId node = node_in_region(region, CloudType::kPrivate, node_index);
    VmRecord rec;
    rec.subscription = sub;
    rec.service = service;
    rec.cloud = CloudType::kPrivate;
    rec.party = PartyType::kFirstParty;
    rec.region = RegionId(region);
    const Node& n = topo_.node(node);
    rec.cluster = n.cluster;
    rec.rack = n.rack;
    rec.node = node;
    rec.cores = 8;
    rec.memory_gb = 32;
    rec.created = -kDay;
    rec.deleted = kNoEnd;
    rec.utilization = std::make_shared<DiurnalUtilization>(low, seed);
    fx_.trace.add_vm(std::move(rec));
  };
  // Deployed in both regions (needed for the region-agnostic test), with
  // the larger, idler footprint in region 0.
  for (int i = 0; i < 4; ++i) add_service_vm(0, i, 100 + i);
  add_service_vm(1, 0, 200);

  const auto rec = recommend_shift(fx_.trace, CloudType::kPrivate);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->service, service);
  EXPECT_EQ(rec->from, RegionId(0));
  EXPECT_EQ(rec->to, RegionId(1));
  EXPECT_DOUBLE_EQ(rec->cores_moved, 32);
  EXPECT_LT(rec->service_mean_utilization, 0.10);

  const auto outcome = evaluate_shift(fx_.trace, CloudType::kPrivate, *rec);
  // Source health improves: both metrics drop (the Canada pilot's shape).
  EXPECT_LT(outcome.source_after.underutilized_core_pct,
            outcome.source_before.underutilized_core_pct);
  EXPECT_LT(outcome.source_after.core_utilization_rate,
            outcome.source_before.core_utilization_rate);
  // Cores are conserved across the pair of regions.
  EXPECT_NEAR(outcome.source_after.allocated_cores +
                  outcome.dest_after.allocated_cores,
              outcome.source_before.allocated_cores +
                  outcome.dest_before.allocated_cores,
              1e-9);
  EXPECT_NEAR(outcome.dest_after.allocated_cores -
                  outcome.dest_before.allocated_cores,
              32, 1e-9);
}

TEST_F(PoliciesTest, NoShiftWithoutAgnosticServices) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.05));
  EXPECT_FALSE(recommend_shift(fx_.trace, CloudType::kPrivate).has_value());
}

// --- Deferral ----------------------------------------------------------------

TEST_F(PoliciesTest, DeferralFillsValley) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  DiurnalUtilization::Params p;
  p.tz_offset_hours = 0;
  p.noise_sigma = 0.0;
  for (int i = 0; i < 4; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(p, 300 + i));

  std::vector<DeferrableJob> jobs(6, DeferrableJob{2.0, 2 * kHour, 0, kWeek});
  const auto report =
      schedule_deferrable(fx_.trace, CloudType::kPrivate, RegionId(0), jobs);
  EXPECT_EQ(report.jobs_scheduled, 6u);
  EXPECT_EQ(report.jobs_rejected, 0u);
  // Valley filling: the peak must not grow (jobs fit in the valley), and
  // every filled hour was a below-median-demand hour beforehand.
  EXPECT_LE(report.peak_after, report.peak_before + 1e-9);
  const double median_before =
      stats::quantile(report.demand_before.values(), 0.5);
  for (std::size_t i = 0; i < report.demand_after.size(); ++i) {
    if (report.demand_after[i] > report.demand_before[i] + 1e-9) {
      EXPECT_LT(report.demand_before[i], median_before);
    }
  }
}

TEST_F(PoliciesTest, DeferralJobsLandAtNight) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  DiurnalUtilization::Params p;
  p.tz_offset_hours = 0;
  p.noise_sigma = 0.0;
  for (int i = 0; i < 4; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(p, 400 + i));
  std::vector<DeferrableJob> jobs(1, DeferrableJob{4.0, kHour, 0, kWeek});
  const auto report =
      schedule_deferrable(fx_.trace, CloudType::kPrivate, RegionId(0), jobs);
  // Find where demand grew; it must be a night hour.
  for (std::size_t i = 0; i < report.demand_after.size(); ++i) {
    if (report.demand_after[i] > report.demand_before[i] + 1e-9) {
      const int h = hour_of_day(report.demand_after.grid().at(i));
      EXPECT_TRUE(h >= 20 || h <= 8) << "job landed at hour " << h;
    }
  }
}

TEST_F(PoliciesTest, DeferralRejectsImpossibleDeadline) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.2));
  std::vector<DeferrableJob> jobs = {
      {1.0, 4 * kHour, 0, 2 * kHour},   // cannot finish by deadline
      {1.0, 2 * kWeek, 0, kWeek},       // longer than the window
  };
  const auto report =
      schedule_deferrable(fx_.trace, CloudType::kPrivate, RegionId(0), jobs);
  EXPECT_EQ(report.jobs_scheduled, 0u);
  EXPECT_EQ(report.jobs_rejected, 2u);
}

TEST_F(PoliciesTest, DeferralRespectsRelease) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.2));
  std::vector<DeferrableJob> jobs = {{1.0, kHour, 5 * kDay, kWeek}};
  const auto report =
      schedule_deferrable(fx_.trace, CloudType::kPrivate, RegionId(0), jobs);
  EXPECT_EQ(report.jobs_scheduled, 1u);
  for (std::size_t i = 0; i < report.demand_after.size(); ++i) {
    if (report.demand_after[i] > report.demand_before[i] + 1e-9) {
      EXPECT_GE(report.demand_after.grid().at(i), 5 * kDay);
    }
  }
}

// --- Pre-provisioning ---------------------------------------------------------

TEST_F(PoliciesTest, PredictiveBeatsReactiveOnHourlyPeaks) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  for (int i = 0; i < 6; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
               std::make_shared<HourlyPeakUtilization>(
                   HourlyPeakUtilization::Params{}, 500 + i));
  const auto report =
      evaluate_preprovisioning(fx_.trace, CloudType::kPrivate);
  EXPECT_GE(report.vms_used, 4u);
  EXPECT_LT(report.predictive_violation_rate,
            report.reactive_violation_rate * 0.6);
  // The buffer costs some capacity, but bounded.
  EXPECT_GT(report.predictive_mean_capacity, report.reactive_mean_capacity);
  EXPECT_LT(report.predictive_mean_capacity,
            report.reactive_mean_capacity * 2.0);
}

TEST_F(PoliciesTest, PreprovisionThrowsWithoutHourlyPeakVms) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.2));
  EXPECT_THROW(evaluate_preprovisioning(fx_.trace, CloudType::kPrivate),
               CheckError);
}

}  // namespace
}  // namespace cloudlens::policies
