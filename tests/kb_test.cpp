#include <gtest/gtest.h>

#include "analysis/context.h"
#include "common/check.h"
#include "kb/extractor.h"
#include "kb/store.h"
#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::kb {
namespace {

using analysis::UtilizationClass;
using workloads::DiurnalUtilization;
using workloads::HourlyPeakUtilization;
using workloads::StableUtilization;

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  NodeId node_in_region(int region, CloudType cloud) {
    const auto clusters = topo_.clusters_in(RegionId(region), cloud);
    return topo_.cluster(clusters[0]).nodes.front();
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(ExtractorTest, EmptySubscriptionGivesNullopt) {
  EXPECT_FALSE(
      extract_subscription(AnalysisContext(fx_.trace), fx_.private_sub).has_value());
}

TEST_F(ExtractorTest, DeploymentFields) {
  const NodeId n0 = node_in_region(0, CloudType::kPrivate);
  const NodeId n1 = node_in_region(1, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n0, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.2));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n1, 8, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.2), RegionId(1));
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.private_sub);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->vm_count, 2u);
  EXPECT_DOUBLE_EQ(rec->total_cores, 12);
  EXPECT_EQ(rec->region_count, 2u);
  EXPECT_EQ(rec->cloud, CloudType::kPrivate);
  EXPECT_EQ(rec->party, PartyType::kFirstParty);
}

TEST_F(ExtractorTest, ShortLifetimeShare) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  // 3 short-lived, 1 long-lived, all inside the window.
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, kHour,
               kHour + 10 * kMinute);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, kHour, kDay);
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.public_sub);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->ended_vms, 4u);
  EXPECT_NEAR(rec->short_lifetime_share, 0.75, 1e-9);
}

TEST_F(ExtractorTest, DominantPatternAndConfidence) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(
                   DiurnalUtilization::Params{}, 10 + i));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, -kDay, kNoEnd,
             std::make_shared<StableUtilization>(StableUtilization::Params{},
                                                 20));
  ExtractorOptions options;
  options.max_classified_vms = 0;  // classify all
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.private_sub, options);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->dominant_pattern, UtilizationClass::kDiurnal);
  EXPECT_NEAR(rec->pattern_confidence, 0.75, 1e-9);
  EXPECT_GT(rec->mean_utilization, 0.0);
  EXPECT_GT(rec->p95_utilization, rec->mean_utilization);
}

TEST_F(ExtractorTest, SpotCandidateHint) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  for (int i = 0; i < 10; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, i * kHour,
               i * kHour + 10 * kMinute);
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.public_sub);
  ASSERT_TRUE(rec);
  EXPECT_TRUE(rec->spot_candidate);
}

TEST_F(ExtractorTest, OversubCandidateHint) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  StableUtilization::Params p;
  p.level = 0.15;
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, -kDay, kNoEnd,
               std::make_shared<StableUtilization>(p, 30 + i));
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.public_sub);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->dominant_pattern, UtilizationClass::kStable);
  EXPECT_TRUE(rec->oversubscription_candidate);
  EXPECT_FALSE(rec->spot_candidate);
}

TEST_F(ExtractorTest, PreprovisionHint) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, -kDay, kNoEnd,
               std::make_shared<HourlyPeakUtilization>(
                   HourlyPeakUtilization::Params{}, 40 + i));
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.private_sub);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->dominant_pattern, UtilizationClass::kHourlyPeak);
  EXPECT_TRUE(rec->preprovision_target);
}

TEST_F(ExtractorTest, RegionAgnosticDetection) {
  const NodeId n0 = node_in_region(0, CloudType::kPrivate);
  const NodeId n1 = node_in_region(1, CloudType::kPrivate);
  DiurnalUtilization::Params p;
  p.tz_offset_hours = -5;  // same anchor in both regions
  p.noise_sigma = 0.02;
  for (int i = 0; i < 3; ++i) {
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n0, 2, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(p, 50 + i));
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n1, 2, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(p, 60 + i), RegionId(1));
  }
  const auto rec = extract_subscription(AnalysisContext(fx_.trace), fx_.private_sub);
  ASSERT_TRUE(rec);
  EXPECT_TRUE(rec->region_agnostic);
  EXPECT_GT(rec->cross_region_correlation, 0.7);
}

TEST_F(ExtractorTest, ExtractAllSkipsEmpty) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(0.1));
  const auto records = extract_all(AnalysisContext(fx_.trace));
  ASSERT_EQ(records.size(), 1u);  // private sub has no VMs
  EXPECT_EQ(records[0].subscription, fx_.public_sub);
}

SubscriptionKnowledge sample_record(std::uint32_t id, CloudType cloud) {
  SubscriptionKnowledge r;
  r.subscription = SubscriptionId(id);
  r.cloud = cloud;
  r.party = PartyType::kThirdParty;
  r.vm_count = 10;
  r.total_cores = 42.5;
  r.region_count = 2;
  r.short_lifetime_share = 0.8125;
  r.ended_vms = 16;
  r.dominant_pattern = UtilizationClass::kDiurnal;
  r.pattern_confidence = 0.75;
  r.mean_utilization = 0.18;
  r.p95_utilization = 0.52;
  r.cross_region_correlation = 0.91;
  r.region_agnostic = true;
  r.spot_candidate = true;
  return r;
}

TEST(KnowledgeBaseTest, UpsertAndFind) {
  KnowledgeBase kb;
  kb.upsert(sample_record(1, CloudType::kPublic));
  EXPECT_EQ(kb.size(), 1u);
  ASSERT_NE(kb.find(SubscriptionId(1)), nullptr);
  EXPECT_EQ(kb.find(SubscriptionId(2)), nullptr);

  auto updated = sample_record(1, CloudType::kPublic);
  updated.vm_count = 99;
  kb.upsert(updated);
  EXPECT_EQ(kb.size(), 1u);
  EXPECT_EQ(kb.find(SubscriptionId(1))->vm_count, 99u);
}

TEST(KnowledgeBaseTest, Queries) {
  KnowledgeBase kb;
  kb.upsert(sample_record(1, CloudType::kPublic));
  auto priv = sample_record(2, CloudType::kPrivate);
  priv.dominant_pattern = UtilizationClass::kStable;
  priv.spot_candidate = false;
  priv.oversubscription_candidate = true;
  kb.upsert(priv);

  EXPECT_EQ(kb.by_cloud(CloudType::kPublic).size(), 1u);
  EXPECT_EQ(kb.by_pattern(UtilizationClass::kStable).size(), 1u);
  EXPECT_EQ(kb.spot_candidates(CloudType::kPublic).size(), 1u);
  EXPECT_EQ(kb.spot_candidates(CloudType::kPrivate).size(), 0u);
  EXPECT_EQ(kb.oversubscription_candidates(CloudType::kPrivate).size(), 1u);
  EXPECT_EQ(kb.region_agnostic_subscriptions(CloudType::kPublic).size(), 1u);
  EXPECT_EQ(kb.where([](const auto& r) { return r.vm_count == 10; }).size(),
            2u);
}

TEST(KnowledgeBaseTest, Summary) {
  KnowledgeBase kb;
  kb.upsert(sample_record(1, CloudType::kPublic));
  auto r2 = sample_record(2, CloudType::kPublic);
  r2.spot_candidate = false;
  r2.region_agnostic = false;
  kb.upsert(r2);
  const auto summary = kb.summarize(CloudType::kPublic);
  EXPECT_EQ(summary.subscriptions, 2u);
  EXPECT_EQ(summary.vms, 20u);
  EXPECT_NEAR(summary.spot_candidate_share, 0.5, 1e-9);
  EXPECT_NEAR(summary.region_agnostic_share, 0.5, 1e-9);
  EXPECT_EQ(kb.summarize(CloudType::kPrivate).subscriptions, 0u);
}

TEST(KnowledgeBaseTest, CsvRoundTrip) {
  KnowledgeBase kb;
  kb.upsert(sample_record(1, CloudType::kPublic));
  auto r2 = sample_record(7, CloudType::kPrivate);
  r2.service = ServiceId(3);
  r2.party = PartyType::kFirstParty;
  r2.dominant_pattern = UtilizationClass::kHourlyPeak;
  kb.upsert(r2);

  const KnowledgeBase restored = KnowledgeBase::from_csv(kb.to_csv());
  ASSERT_EQ(restored.size(), 2u);
  const auto* a = restored.find(SubscriptionId(1));
  const auto* b = restored.find(SubscriptionId(7));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->cloud, CloudType::kPublic);
  EXPECT_EQ(a->vm_count, 10u);
  EXPECT_NEAR(a->short_lifetime_share, 0.8125, 1e-9);
  EXPECT_TRUE(a->region_agnostic);
  EXPECT_TRUE(a->spot_candidate);
  EXPECT_EQ(b->service, ServiceId(3));
  EXPECT_EQ(b->party, PartyType::kFirstParty);
  EXPECT_EQ(b->dominant_pattern, UtilizationClass::kHourlyPeak);
  EXPECT_NEAR(b->total_cores, 42.5, 1e-9);
}

TEST(KnowledgeBaseTest, FromCsvRejectsGarbage) {
  EXPECT_THROW(KnowledgeBase::from_csv(""), CheckError);
  EXPECT_THROW(KnowledgeBase::from_csv("not,a,header\n"), CheckError);
  EXPECT_THROW(KnowledgeBase::from_csv(csv_header() + "\n1,2,3\n"),
               CheckError);
}

TEST(KnowledgeBaseTest, ConstructFromVector) {
  std::vector<SubscriptionKnowledge> records = {
      sample_record(1, CloudType::kPublic),
      sample_record(2, CloudType::kPrivate)};
  const KnowledgeBase kb(std::move(records));
  EXPECT_EQ(kb.size(), 2u);
}

}  // namespace
}  // namespace cloudlens::kb
