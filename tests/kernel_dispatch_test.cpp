// Runtime-dispatch behaviour of the kernel tier: environment-variable
// forcing (CLOUDLENS_KERNELS / CLOUDLENS_KERNEL_MODE), programmatic
// overrides, clamping of tiers the hardware cannot run, and the
// tier-reporting contract.
//
// Tests that force a specific ISA tier skip with a message — not fail —
// on hardware that lacks it, so the suite is portable to pre-AVX2
// machines (and, with the scalar fallback, non-x86 ones).
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "stats/kernels/dispatch.h"
#include "stats/kernels/kernels.h"

namespace cloudlens::stats::kernels {
namespace {

/// RAII guard: saves/restores both kernel env vars and re-resolves the
/// dispatch config on the way out, so tests cannot leak state.
class EnvGuard {
 public:
  EnvGuard() {
    save("CLOUDLENS_KERNELS", kernels_);
    save("CLOUDLENS_KERNEL_MODE", mode_);
  }
  ~EnvGuard() {
    restore("CLOUDLENS_KERNELS", kernels_);
    restore("CLOUDLENS_KERNEL_MODE", mode_);
    reset_from_env();
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v != nullptr ? std::string(v) : std::string()};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> kernels_;
  std::pair<bool, std::string> mode_;
};

void force_env(const char* tier, const char* mode) {
  if (tier != nullptr) {
    ::setenv("CLOUDLENS_KERNELS", tier, 1);
  } else {
    ::unsetenv("CLOUDLENS_KERNELS");
  }
  if (mode != nullptr) {
    ::setenv("CLOUDLENS_KERNEL_MODE", mode, 1);
  } else {
    ::unsetenv("CLOUDLENS_KERNEL_MODE");
  }
  reset_from_env();
}

TEST(KernelDispatch, DefaultIsBestSupportedStrict) {
  EnvGuard guard;
  force_env(nullptr, nullptr);
  const Config config = active();
  EXPECT_EQ(config.tier, best_supported_tier());
  EXPECT_EQ(config.mode, Mode::kStrict);
}

TEST(KernelDispatch, AutoSelectsBestSupported) {
  EnvGuard guard;
  force_env("auto", nullptr);
  EXPECT_EQ(active().tier, best_supported_tier());
}

TEST(KernelDispatch, EnvForcesScalar) {
  EnvGuard guard;
  force_env("scalar", nullptr);
  EXPECT_EQ(active().tier, Tier::kScalar);
  // A dispatched call must run (and agree with the oracle) on any CPU.
  const double x[] = {0.25, 0.5, 0.75};
  const PearsonSums s = pearson_sums(std::span<const double>(x),
                                     std::span<const double>(x));
  EXPECT_DOUBLE_EQ(s.sx, 1.5);
}

TEST(KernelDispatch, EnvForcesSse2) {
  if (!tier_supported(Tier::kSse2))
    GTEST_SKIP() << "sse2 tier not supported on this hardware; "
                    "dispatch clamps it (covered by UnsupportedTierClamps)";
  EnvGuard guard;
  force_env("sse2", "strict");
  EXPECT_EQ(active().tier, Tier::kSse2);
  EXPECT_EQ(active().mode, Mode::kStrict);
}

TEST(KernelDispatch, EnvForcesAvx2) {
  if (!tier_supported(Tier::kAvx2))
    GTEST_SKIP() << "avx2 tier not supported on this hardware; "
                    "dispatch clamps it (covered by UnsupportedTierClamps)";
  EnvGuard guard;
  force_env("avx2", "fast");
  EXPECT_EQ(active().tier, Tier::kAvx2);
  EXPECT_EQ(active().mode, Mode::kFast);
}

TEST(KernelDispatch, UnsupportedTierClamps) {
  EnvGuard guard;
  // Find a tier the hardware lacks; if every tier is supported there is
  // nothing to clamp, so exercise set_active's pass-through instead.
  Tier missing = Tier::kScalar;
  bool found = false;
  for (const Tier t : {Tier::kAvx2, Tier::kSse2}) {
    if (!tier_supported(t)) {
      missing = t;
      found = true;
      break;
    }
  }
  if (!found)
    GTEST_SKIP() << "every tier is supported on this hardware; nothing to "
                    "clamp";
  set_active({missing, Mode::kStrict});
  EXPECT_EQ(active().tier, best_supported_tier());
}

TEST(KernelDispatch, UnrecognizedEnvFallsBackToAuto) {
  EnvGuard guard;
  force_env("pentium-mmx", "blazing");
  EXPECT_EQ(active().tier, best_supported_tier());
  EXPECT_EQ(active().mode, Mode::kStrict);
}

TEST(KernelDispatch, ModeEnvIsIndependentOfTierEnv) {
  EnvGuard guard;
  force_env("scalar", "fast");
  EXPECT_EQ(active().tier, Tier::kScalar);
  EXPECT_EQ(active().mode, Mode::kFast);
}

TEST(KernelDispatch, SetFromStringsRoundTrips) {
  EnvGuard guard;
  force_env(nullptr, nullptr);
  EXPECT_TRUE(set_tier_from_string("scalar"));
  EXPECT_TRUE(set_mode_from_string("fast"));
  EXPECT_EQ(active().tier, Tier::kScalar);
  EXPECT_EQ(active().mode, Mode::kFast);
  EXPECT_TRUE(set_tier_from_string("auto"));
  EXPECT_EQ(active().tier, best_supported_tier());
  EXPECT_FALSE(set_tier_from_string("avx512vnni"));
  EXPECT_FALSE(set_mode_from_string("sloppy"));
  // Failed parses must not disturb the active config.
  EXPECT_EQ(active().tier, best_supported_tier());
  EXPECT_EQ(active().mode, Mode::kFast);
}

TEST(KernelDispatch, TierNamesRoundTrip) {
  for (const Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2})
    EXPECT_EQ(parse_tier(to_string(t)), t);
  for (const Mode m : {Mode::kStrict, Mode::kFast})
    EXPECT_EQ(parse_mode(to_string(m)), m);
  EXPECT_EQ(parse_tier("auto"), std::nullopt);  // "auto" is not a tier
}

TEST(KernelDispatch, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(tier_supported(Tier::kScalar));
  // best_supported_tier must itself be runnable.
  EXPECT_TRUE(tier_supported(best_supported_tier()));
}

}  // namespace
}  // namespace cloudlens::stats::kernels
