#include "workloads/lifetime.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cloudlens::workloads {
namespace {

TEST(LifetimeModelTest, SamplesWithinBins) {
  LifetimeModel model({{kMinute, kHour, 1.0}});
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const SimDuration d = model.sample(rng);
    EXPECT_GE(d, kMinute);
    EXPECT_LE(d, kHour);
  }
}

TEST(LifetimeModelTest, BinWeightsRespected) {
  LifetimeModel model({{kMinute, 10 * kMinute, 0.7},
                       {kHour, 2 * kHour, 0.3}});
  Rng rng(2);
  int short_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng) <= 10 * kMinute) ++short_count;
  }
  EXPECT_NEAR(short_count / double(n), 0.7, 0.02);
}

TEST(LifetimeModelTest, ShortestBinShare) {
  LifetimeModel model({{kMinute, kHour, 2.0}, {kHour, kDay, 3.0}});
  EXPECT_DOUBLE_EQ(model.shortest_bin_share(), 0.4);
}

TEST(LifetimeModelTest, InvalidBinsThrow) {
  EXPECT_THROW(LifetimeModel({}), CheckError);
  EXPECT_THROW(LifetimeModel({{kHour, kMinute, 1.0}}), CheckError);
  EXPECT_THROW(LifetimeModel({{0, kHour, 1.0}}), CheckError);
  EXPECT_THROW(LifetimeModel({{kMinute, kHour, 0.0}}), CheckError);  // all-zero
}

TEST(LifetimeModelTest, PaperCalibration) {
  // The headline Fig. 3(a) statistic: 49% (private) vs 81% (public) of
  // VMs in the shortest bin.
  EXPECT_NEAR(LifetimeModel::azure_private().shortest_bin_share(), 0.49,
              1e-9);
  EXPECT_NEAR(LifetimeModel::azure_public().shortest_bin_share(), 0.81,
              1e-9);
}

TEST(LifetimeModelTest, PublicStochasticShareMatches) {
  const auto model = LifetimeModel::azure_public();
  Rng rng(3);
  int short_count = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng) < 30 * kMinute) ++short_count;
  }
  EXPECT_NEAR(short_count / double(n), 0.81, 0.02);
}

TEST(LifetimeModelTest, PrivateTailHeavierThanPublic) {
  const auto priv = LifetimeModel::azure_private();
  const auto pub = LifetimeModel::azure_public();
  Rng rng1(4), rng2(4);
  int priv_long = 0, pub_long = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (priv.sample(rng1) > kDay) ++priv_long;
    if (pub.sample(rng2) > kDay) ++pub_long;
  }
  EXPECT_GT(priv_long, 3 * pub_long);
}

TEST(LifetimeModelTest, LogUniformWithinBinSkewsShort) {
  // Log-uniform sampling puts more than half the mass below the geometric
  // midpoint of a wide bin.
  LifetimeModel model({{kMinute, 100 * kMinute, 1.0}});
  Rng rng(5);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (model.sample(rng) < 10 * kMinute) ++below;  // geometric midpoint
  }
  EXPECT_NEAR(below / double(n), 0.5, 0.02);
}

}  // namespace
}  // namespace cloudlens::workloads
