// Parallel-vs-serial equivalence suite: the engine's determinism contract,
// proven end to end. Every parallelized pipeline stage — workload
// generation, pattern classification, spatial correlation, utilization
// distribution, profile fitting — must produce *bit-identical* output at
// threads = 1 (the plain serial loops) and threads = 8, across several
// seeds. Comparisons use EXPECT_EQ on doubles deliberately: approximate
// equality would hide reassociated floating-point sums.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/spatial.h"
#include "analysis/utilization.h"
#include "cloudsim/telemetry_panel.h"
#include "cloudsim/trace_io.h"
#include "workloads/fit.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

using workloads::Scenario;
using workloads::ScenarioOptions;

constexpr std::uint64_t kSeeds[] = {11, 4242, 987654321};

Scenario small_scenario(std::uint64_t seed, std::size_t threads) {
  ScenarioOptions options;
  options.seed = seed;
  options.scale = 0.05;
  options.parallel = ParallelConfig::with_threads(threads);
  return workloads::make_scenario(options);
}

/// Canonical byte-level rendering of a trace (every VM row plus sampled
/// utilization for a capped subset).
std::string render(const Scenario& s) {
  std::ostringstream out;
  export_vm_table(*s.trace, out);
  TraceExportOptions opts;
  opts.max_vms_with_utilization = 200;
  export_utilization(*s.trace, out, opts);
  return out.str();
}

TEST(ParallelEquivalenceTest, GeneratedTracesBitIdentical) {
  for (const std::uint64_t seed : kSeeds) {
    const Scenario serial = small_scenario(seed, 1);
    const Scenario parallel = small_scenario(seed, 8);
    ASSERT_EQ(serial.trace->vms().size(), parallel.trace->vms().size())
        << "seed " << seed;
    EXPECT_EQ(render(serial), render(parallel)) << "seed " << seed;
  }
}

// The remaining stages compare serial vs parallel *analysis* over one trace.
class AnalysisEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(small_scenario(1234, 1));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  const TraceStore& trace() { return *scenario_->trace; }
  static Scenario* scenario_;
};

Scenario* AnalysisEquivalence::scenario_ = nullptr;

TEST_F(AnalysisEquivalence, ClassifierSharesBitIdentical) {
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto serial = analysis::classify_population(AnalysisContext(trace(), ParallelConfig::serial()), cloud, 300, {});
    const auto parallel = analysis::classify_population(AnalysisContext(trace(), ParallelConfig::with_threads(8)), cloud, 300, {});
    EXPECT_EQ(serial.classified, parallel.classified);
    EXPECT_EQ(serial.diurnal, parallel.diurnal);
    EXPECT_EQ(serial.stable, parallel.stable);
    EXPECT_EQ(serial.irregular, parallel.irregular);
    EXPECT_EQ(serial.hourly_peak, parallel.hourly_peak);
  }
}

TEST_F(AnalysisEquivalence, NodeVmCorrelationsBitIdentical) {
  const auto serial = analysis::node_vm_correlations(AnalysisContext(trace(), ParallelConfig::serial()), CloudType::kPrivate, 120);
  const auto parallel = analysis::node_vm_correlations(AnalysisContext(trace(), ParallelConfig::with_threads(8)), CloudType::kPrivate, 120);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_F(AnalysisEquivalence, CrossRegionCorrelationsBitIdentical) {
  const auto serial = analysis::cross_region_correlations(AnalysisContext(trace(), ParallelConfig::serial()), CloudType::kPrivate, 120, 25);
  const auto parallel = analysis::cross_region_correlations(AnalysisContext(trace(), ParallelConfig::with_threads(8)), CloudType::kPrivate, 120, 25);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST_F(AnalysisEquivalence, RegionAgnosticVerdictsBitIdentical) {
  const auto serial = analysis::detect_region_agnostic_services(AnalysisContext(trace(), ParallelConfig::serial()), CloudType::kPrivate, 0.7, 25);
  const auto parallel = analysis::detect_region_agnostic_services(AnalysisContext(trace(), ParallelConfig::with_threads(8)), CloudType::kPrivate, 0.7, 25);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].service, parallel[i].service);
    EXPECT_EQ(serial[i].regions, parallel[i].regions);
    EXPECT_EQ(serial[i].min_pair_correlation, parallel[i].min_pair_correlation);
    EXPECT_EQ(serial[i].mean_pair_correlation,
              parallel[i].mean_pair_correlation);
    EXPECT_EQ(serial[i].region_agnostic, parallel[i].region_agnostic);
  }
}

TEST_F(AnalysisEquivalence, UtilizationBandsBitIdentical) {
  const auto serial = analysis::utilization_distribution(AnalysisContext(trace(), ParallelConfig::serial()), CloudType::kPublic, 200);
  const auto parallel = analysis::utilization_distribution(AnalysisContext(trace(), ParallelConfig::with_threads(8)), CloudType::kPublic, 200);
  EXPECT_EQ(serial.vms_used, parallel.vms_used);
  EXPECT_EQ(serial.weekly.p25, parallel.weekly.p25);
  EXPECT_EQ(serial.weekly.p50, parallel.weekly.p50);
  EXPECT_EQ(serial.weekly.p75, parallel.weekly.p75);
  EXPECT_EQ(serial.weekly.p95, parallel.weekly.p95);
  EXPECT_EQ(serial.daily_p25, parallel.daily_p25);
  EXPECT_EQ(serial.daily_p50, parallel.daily_p50);
  EXPECT_EQ(serial.daily_p75, parallel.daily_p75);
  EXPECT_EQ(serial.daily_p95, parallel.daily_p95);
}

TEST_F(AnalysisEquivalence, UsedCoresReductionBitIdentical) {
  // The floating-point reduction: the fixed chunk grid must make the sum
  // reproducible at any thread count, bit for bit.
  const auto serial = analysis::region_used_cores_hourly(AnalysisContext(trace(), ParallelConfig::serial()), CloudType::kPrivate, RegionId(), 400);
  const auto parallel = analysis::region_used_cores_hourly(AnalysisContext(trace(), ParallelConfig::with_threads(8)), CloudType::kPrivate, RegionId(), 400);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "hour " << i;
  }
}

// --- Panel-vs-legacy equivalence -----------------------------------------
//
// The columnar telemetry panel is a pure cache: with the panel disabled,
// every consumer falls back to evaluating rows on demand through the same
// fill kernel. The contract is bit-identity — same doubles with the panel
// on or off, at one thread or eight, across seeds. Each seed builds one
// scenario and snapshots every panel-consuming analysis under all four
// (panel × threads) settings.

/// Flat double rendering of every panel-consuming analysis output.
std::vector<double> analysis_snapshot(const TraceStore& trace,
                                      std::size_t threads) {
  const ParallelConfig parallel = ParallelConfig::with_threads(threads);
  std::vector<double> out;
  const auto append = [&out](std::span<const double> values) {
    out.insert(out.end(), values.begin(), values.end());
  };

  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto shares =
        analysis::classify_population(AnalysisContext(trace, parallel), cloud, 300, {});
    out.insert(out.end(),
               {shares.diurnal, shares.stable, shares.irregular,
                shares.hourly_peak, double(shares.classified)});
  }

  append(analysis::node_vm_correlations(AnalysisContext(trace, parallel), CloudType::kPrivate, 120));
  append(analysis::cross_region_correlations(AnalysisContext(trace, parallel), CloudType::kPrivate, 120,
                                             25));

  const auto bands = analysis::utilization_distribution(AnalysisContext(trace, parallel), CloudType::kPublic, 200);
  out.push_back(double(bands.vms_used));
  append(bands.weekly.p25);
  append(bands.weekly.p50);
  append(bands.weekly.p75);
  append(bands.weekly.p95);
  append(bands.daily_p25);
  append(bands.daily_p50);
  append(bands.daily_p75);
  append(bands.daily_p95);

  for (const auto& v : analysis::detect_region_agnostic_services(AnalysisContext(trace, parallel), CloudType::kPrivate, 0.7, 25)) {
    out.insert(out.end(),
               {double(v.service.value()), double(v.regions),
                v.min_pair_correlation, v.mean_pair_correlation,
                v.region_agnostic ? 1.0 : 0.0});
  }

  append(analysis::region_used_cores_hourly(AnalysisContext(trace, parallel), CloudType::kPrivate,
                                            RegionId(), 400)
             .values());
  return out;
}

TEST(PanelEquivalenceTest, PanelVsLegacyBitIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    const Scenario scenario = small_scenario(seed, 1);
    TraceStore& trace = *scenario.trace;

    trace.set_telemetry_panel_enabled(true);
    const auto panel_serial = analysis_snapshot(trace, 1);
    const auto panel_threads = analysis_snapshot(trace, 8);

    trace.set_telemetry_panel_enabled(false);
    const auto legacy_serial = analysis_snapshot(trace, 1);
    const auto legacy_threads = analysis_snapshot(trace, 8);

    ASSERT_FALSE(panel_serial.empty()) << "seed " << seed;
    EXPECT_EQ(panel_serial, panel_threads) << "seed " << seed;
    EXPECT_EQ(panel_serial, legacy_serial) << "seed " << seed;
    EXPECT_EQ(panel_serial, legacy_threads) << "seed " << seed;
  }
}

TEST_F(AnalysisEquivalence, FittedProfilesBitIdentical) {
  workloads::FitOptions serial_opts;
  serial_opts.classify_max_vms = 200;
  serial_opts.parallel = ParallelConfig::serial();
  workloads::FitOptions parallel_opts = serial_opts;
  parallel_opts.parallel = ParallelConfig::with_threads(8);

  const auto base = workloads::CloudProfile::azure_private();
  const auto serial =
      fit_profile(trace(), CloudType::kPrivate, base, serial_opts);
  const auto parallel =
      fit_profile(trace(), CloudType::kPrivate, base, parallel_opts);

  EXPECT_EQ(serial.classified_vms, parallel.classified_vms);
  EXPECT_EQ(serial.burst_hours_detected, parallel.burst_hours_detected);
  EXPECT_EQ(serial.mean_creations_per_hour_per_region,
            parallel.mean_creations_per_hour_per_region);
  const auto& sp = serial.profile;
  const auto& pp = parallel.profile;
  EXPECT_EQ(sp.pattern_mix.diurnal, pp.pattern_mix.diurnal);
  EXPECT_EQ(sp.pattern_mix.stable, pp.pattern_mix.stable);
  EXPECT_EQ(sp.pattern_mix.irregular, pp.pattern_mix.irregular);
  EXPECT_EQ(sp.pattern_mix.hourly_peak, pp.pattern_mix.hourly_peak);
  EXPECT_EQ(sp.region_agnostic_prob, pp.region_agnostic_prob);
  EXPECT_EQ(sp.diurnal_churn.base_per_hour, pp.diurnal_churn.base_per_hour);
  EXPECT_EQ(sp.diurnal_churn.weekend_scale, pp.diurnal_churn.weekend_scale);
  EXPECT_EQ(sp.burst_churn.bursts_per_week, pp.burst_churn.bursts_per_week);
  EXPECT_EQ(sp.deploy_size_mu, pp.deploy_size_mu);
  EXPECT_EQ(sp.deploy_size_sigma, pp.deploy_size_sigma);
}

}  // namespace
}  // namespace cloudlens
