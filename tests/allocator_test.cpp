#include "cloudsim/allocator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "testutil.h"

namespace cloudlens {
namespace {

VmRequest request(SubscriptionId sub, CloudType cloud, double cores = 4,
                  RegionId region = RegionId(0)) {
  VmRequest req;
  req.subscription = sub;
  req.cloud = cloud;
  req.region = region;
  req.cores = cores;
  req.memory_gb = cores * 4;
  return req;
}

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest() : topo_(test::tiny_topology()) {}
  Topology topo_;
  SubscriptionId sub_{0};
};

TEST_F(AllocatorTest, PlacesInRequestedRegionAndCloud) {
  Allocator alloc(topo_);
  const auto placement =
      alloc.allocate(request(sub_, CloudType::kPrivate), VmId(0));
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(topo_.node(placement->node).cloud, CloudType::kPrivate);
  EXPECT_EQ(topo_.node(placement->node).region, RegionId(0));
  EXPECT_EQ(alloc.stats().requests, 1u);
  EXPECT_EQ(alloc.stats().failures, 0u);
}

TEST_F(AllocatorTest, TracksUsedCores) {
  Allocator alloc(topo_);
  const auto placement =
      alloc.allocate(request(sub_, CloudType::kPublic, 6), VmId(0));
  ASSERT_TRUE(placement.has_value());
  EXPECT_DOUBLE_EQ(alloc.node_used_cores(placement->node), 6);
  EXPECT_DOUBLE_EQ(alloc.node_free_cores(placement->node), 10);
  EXPECT_DOUBLE_EQ(alloc.node_used_memory_gb(placement->node), 24);
}

TEST_F(AllocatorTest, ReleaseFreesCapacity) {
  Allocator alloc(topo_);
  const auto placement =
      alloc.allocate(request(sub_, CloudType::kPublic, 6), VmId(0));
  ASSERT_TRUE(placement.has_value());
  alloc.release(VmId(0));
  EXPECT_DOUBLE_EQ(alloc.node_used_cores(placement->node), 0);
}

TEST_F(AllocatorTest, ReleaseUnknownVmIsNoop) {
  Allocator alloc(topo_);
  alloc.release(VmId(123));  // must not throw
}

TEST_F(AllocatorTest, DoubleAllocateSameVmThrows) {
  Allocator alloc(topo_);
  ASSERT_TRUE(alloc.allocate(request(sub_, CloudType::kPublic), VmId(0)));
  EXPECT_THROW(alloc.allocate(request(sub_, CloudType::kPublic), VmId(0)),
               CheckError);
}

TEST_F(AllocatorTest, FailsWhenRegionFull) {
  Allocator alloc(topo_);
  // Region 0 private capacity: 8 nodes x 16 cores = 128 cores.
  std::uint32_t id = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        alloc.allocate(request(sub_, CloudType::kPrivate, 16), VmId(id++)));
  }
  EXPECT_FALSE(
      alloc.allocate(request(sub_, CloudType::kPrivate, 16), VmId(id++)));
  EXPECT_EQ(alloc.stats().failures, 1u);
  EXPECT_NEAR(alloc.stats().failure_rate(), 1.0 / 9.0, 1e-12);
}

TEST_F(AllocatorTest, DoesNotSpillToOtherCloudOrRegion) {
  Allocator alloc(topo_);
  std::uint32_t id = 0;
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(
        alloc.allocate(request(sub_, CloudType::kPrivate, 16), VmId(id++)));
  // Private region 0 is full; public region 0 and private region 1 are
  // untouched, but a private region-0 request must still fail.
  EXPECT_FALSE(
      alloc.allocate(request(sub_, CloudType::kPrivate, 16), VmId(id++)));
  EXPECT_TRUE(alloc.allocate(request(sub_, CloudType::kPublic, 16), VmId(id++)));
  EXPECT_TRUE(alloc.allocate(
      request(sub_, CloudType::kPrivate, 16, RegionId(1)), VmId(id++)));
}

TEST_F(AllocatorTest, MemoryConstraintRespected) {
  Allocator alloc(topo_);
  VmRequest req = request(sub_, CloudType::kPublic, 1);
  req.memory_gb = 64;  // full node memory
  ASSERT_TRUE(alloc.allocate(req, VmId(0)));
  // 16 nodes of public capacity in region 0 (1 cluster x 2 racks x 4 nodes
  // = 8 nodes). Fill the rest.
  std::uint32_t id = 1;
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(alloc.allocate(req, VmId(id++)));
  EXPECT_FALSE(alloc.allocate(req, VmId(id++)));  // memory exhausted
  EXPECT_GT(alloc.node_free_cores(NodeId(0)), 0);  // cores were not
}

TEST_F(AllocatorTest, SpreadsOwnerAcrossRacks) {
  Allocator alloc(topo_);
  // Two same-owner VMs: the second must land on the other rack.
  const auto p1 = alloc.allocate(request(sub_, CloudType::kPrivate), VmId(0));
  const auto p2 = alloc.allocate(request(sub_, CloudType::kPrivate), VmId(1));
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->rack, p2->rack);
}

TEST_F(AllocatorTest, SpreadingDisabledPacksBestFit) {
  AllocatorOptions opts;
  opts.spread_fault_domains = false;
  Allocator alloc(topo_, opts);
  const auto p1 =
      alloc.allocate(request(sub_, CloudType::kPrivate, 4), VmId(0));
  const auto p2 =
      alloc.allocate(request(sub_, CloudType::kPrivate, 4), VmId(1));
  ASSERT_TRUE(p1 && p2);
  // Best-fit packs onto the same node (it has the least leftover).
  EXPECT_EQ(p1->node, p2->node);
}

TEST_F(AllocatorTest, DifferentOwnersShareRacksFreely) {
  Allocator alloc(topo_);
  SubscriptionId other(1);
  const auto p1 = alloc.allocate(request(sub_, CloudType::kPrivate), VmId(0));
  const auto p2 = alloc.allocate(request(other, CloudType::kPrivate), VmId(1));
  ASSERT_TRUE(p1 && p2);
  // Different owners best-fit onto the same node: no spreading pressure.
  EXPECT_EQ(p1->node, p2->node);
}

TEST_F(AllocatorTest, ServiceIdentityUsedForSpreadingWhenPresent) {
  Allocator alloc(topo_);
  VmRequest a = request(sub_, CloudType::kPrivate);
  a.service = ServiceId(7);
  VmRequest b = request(SubscriptionId(1), CloudType::kPrivate);
  b.service = ServiceId(7);  // same service, different subscription
  const auto p1 = alloc.allocate(a, VmId(0));
  const auto p2 = alloc.allocate(b, VmId(1));
  ASSERT_TRUE(p1 && p2);
  EXPECT_NE(p1->rack, p2->rack);  // spread by service identity
}

TEST_F(AllocatorTest, ReleaseRestoresSpreadingCounts) {
  Allocator alloc(topo_);
  const auto p1 = alloc.allocate(request(sub_, CloudType::kPrivate), VmId(0));
  ASSERT_TRUE(p1);
  alloc.release(VmId(0));
  // After release the same rack is preferred again (best-fit tie-break).
  const auto p2 = alloc.allocate(request(sub_, CloudType::kPrivate), VmId(1));
  ASSERT_TRUE(p2);
  EXPECT_EQ(p1->node, p2->node);
}

TEST_F(AllocatorTest, InvalidRequestThrows) {
  Allocator alloc(topo_);
  VmRequest bad = request(sub_, CloudType::kPublic);
  bad.cores = 0;
  EXPECT_THROW(alloc.allocate(bad, VmId(0)), CheckError);
}

}  // namespace
}  // namespace cloudlens
