// End-to-end integration test: generate the dual-cloud scenario at reduced
// scale and assert the paper's qualitative contrasts hold — the analysis
// pipeline must recover what the generator planted.
#include <gtest/gtest.h>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/deployment.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "analysis/utilization.h"
#include "stats/descriptive.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

class ScenarioIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::ScenarioOptions options;
    options.seed = 1234;
    options.scale = 0.2;
    scenario_ = new workloads::Scenario(workloads::make_scenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  const TraceStore& trace() { return *scenario_->trace; }
  static workloads::Scenario* scenario_;
};

workloads::Scenario* ScenarioIntegration::scenario_ = nullptr;

TEST_F(ScenarioIntegration, Fig1aPrivateDeploymentsLarger) {
  const auto priv = analysis::vms_per_subscription(AnalysisContext(trace()), CloudType::kPrivate, analysis::kDefaultSnapshot);
  const auto pub = analysis::vms_per_subscription(AnalysisContext(trace()), CloudType::kPublic, analysis::kDefaultSnapshot);
  ASSERT_FALSE(priv.empty());
  ASSERT_FALSE(pub.empty());
  EXPECT_GT(stats::quantile_sorted(priv, 0.5),
            10 * stats::quantile_sorted(pub, 0.5));
}

TEST_F(ScenarioIntegration, Fig1bPublicClustersHostFarMoreSubscriptions) {
  const auto priv = analysis::subscriptions_per_cluster(AnalysisContext(trace()), CloudType::kPrivate, analysis::kDefaultSnapshot);
  const auto pub = analysis::subscriptions_per_cluster(AnalysisContext(trace()), CloudType::kPublic, analysis::kDefaultSnapshot);
  const double priv_median = stats::quantile_sorted(priv, 0.5);
  const double pub_median = stats::quantile_sorted(pub, 0.5);
  // The paper reports ~20x; at reduced scale require at least 5x.
  EXPECT_GT(pub_median, 5 * std::max(1.0, priv_median));
}

TEST_F(ScenarioIntegration, Fig2PublicVmShapesWider) {
  const auto priv = analysis::vm_size_heatmap(AnalysisContext(trace()), CloudType::kPrivate,
                                              analysis::kDefaultSnapshot);
  const auto pub = analysis::vm_size_heatmap(AnalysisContext(trace()), CloudType::kPublic,
                                             analysis::kDefaultSnapshot);
  // Count non-empty cells: public demand covers more of the shape space.
  auto occupied = [](const stats::Histogram2D& h) {
    std::size_t n = 0;
    for (std::size_t y = 0; y < h.y_axis().bins(); ++y)
      for (std::size_t x = 0; x < h.x_axis().bins(); ++x)
        if (h.weight_at(x, y) > 0) ++n;
    return n;
  };
  EXPECT_GT(occupied(pub), occupied(priv));
}

TEST_F(ScenarioIntegration, Fig3aPublicShortLifetimeShareHigher) {
  const auto priv = analysis::vm_lifetimes(AnalysisContext(trace()), CloudType::kPrivate);
  const auto pub = analysis::vm_lifetimes(AnalysisContext(trace()), CloudType::kPublic);
  const double priv_share = analysis::shortest_bin_share(priv);
  const double pub_share = analysis::shortest_bin_share(pub);
  EXPECT_NEAR(priv_share, 0.49, 0.08);
  EXPECT_NEAR(pub_share, 0.81, 0.06);
  EXPECT_GT(pub_share, priv_share + 0.2);
}

TEST_F(ScenarioIntegration, Fig3bWeekendDipAndPrivateSpikes) {
  // "the temporal changes of VM count largely follow a diurnal pattern
  // during weekdays and exhibit a significant decrease over weekends" —
  // visible in the creation rate for both clouds.
  auto weekday_vs_weekend = [&](CloudType cloud) {
    const auto created =
        analysis::creations_per_hour(AnalysisContext(trace()), cloud, RegionId());
    double weekday = 0, weekend = 0;
    std::size_t nd = 0, ne = 0;
    for (std::size_t i = 0; i < created.size(); ++i) {
      if (is_weekend(created.grid().at(i))) {
        weekend += created[i];
        ++ne;
      } else {
        weekday += created[i];
        ++nd;
      }
    }
    return (weekday / double(nd)) / std::max(1e-9, weekend / double(ne));
  };
  EXPECT_GT(weekday_vs_weekend(CloudType::kPublic), 1.3);
  EXPECT_GT(weekday_vs_weekend(CloudType::kPrivate), 1.05);

  // Private VM counts show occasional large spikes (burst rollouts).
  // Bursts hit one region at a time, so measure per-region spikiness
  // (max / p95 of the hourly count series) and take the worst region.
  auto spikiness = [&](CloudType cloud) {
    double worst = 0;
    for (const auto& region : trace().topology().regions()) {
      const auto counts =
          analysis::vm_count_per_hour(AnalysisContext(trace()), cloud, region.id);
      std::vector<double> xs(counts.values().begin(), counts.values().end());
      worst = std::max(
          worst, counts.max() / std::max(1e-9, stats::quantile(xs, 0.95)));
    }
    return worst;
  };
  EXPECT_GT(spikiness(CloudType::kPrivate),
            spikiness(CloudType::kPublic) + 0.02);
}

TEST_F(ScenarioIntegration, Fig3dPrivateCreationCvHigher) {
  const auto priv =
      analysis::creation_cv_by_region(AnalysisContext(trace()), CloudType::kPrivate);
  const auto pub = analysis::creation_cv_by_region(AnalysisContext(trace()), CloudType::kPublic);
  ASSERT_FALSE(priv.empty());
  ASSERT_FALSE(pub.empty());
  EXPECT_GT(stats::quantile(priv, 0.5), 1.3 * stats::quantile(pub, 0.5));
}

TEST_F(ScenarioIntegration, Fig4PrivateMoreMultiRegionByCores) {
  const auto priv = analysis::region_spread(AnalysisContext(trace()), CloudType::kPrivate,
                                            analysis::kDefaultSnapshot);
  const auto pub = analysis::region_spread(AnalysisContext(trace()), CloudType::kPublic,
                                           analysis::kDefaultSnapshot);
  // Both clouds: most subscriptions are single-region.
  EXPECT_GT(stats::quantile(priv.regions_per_subscription, 0.5), 0.9);
  // Core-share contrast: public single-region share clearly higher.
  EXPECT_GT(pub.single_region_core_share,
            priv.single_region_core_share + 0.15);
}

TEST_F(ScenarioIntegration, Fig5dPatternMixContrasts) {
  const auto priv =
      analysis::classify_population(AnalysisContext(trace()), CloudType::kPrivate, 400);
  const auto pub =
      analysis::classify_population(AnalysisContext(trace()), CloudType::kPublic, 400);
  ASSERT_GT(priv.classified, 100u);
  ASSERT_GT(pub.classified, 100u);
  // Diurnal is the most common class in both clouds.
  EXPECT_GT(priv.diurnal, priv.stable);
  EXPECT_GT(priv.diurnal, priv.irregular);
  EXPECT_GT(priv.diurnal, priv.hourly_peak);
  EXPECT_GT(pub.diurnal, pub.stable - 0.05);
  // Private has roughly double the diurnal share; public more stable;
  // hourly-peak concentrated in private.
  EXPECT_GT(priv.diurnal, 1.2 * pub.diurnal);
  EXPECT_GT(pub.stable, priv.stable + 0.1);
  EXPECT_GT(priv.hourly_peak, pub.hourly_peak);
}

TEST_F(ScenarioIntegration, Fig6UtilizationModestAndPrivateDaytimeSwings) {
  const auto priv =
      analysis::utilization_distribution(AnalysisContext(trace()), CloudType::kPrivate, 400);
  const auto pub =
      analysis::utilization_distribution(AnalysisContext(trace()), CloudType::kPublic, 400);
  // "According to the 75-percentile, CPU utilization for both ... is lower
  // than 30%" most of the time — check the weekly p75 median level.
  const double priv_p75 = stats::quantile(priv.weekly.p75, 0.5);
  const double pub_p75 = stats::quantile(pub.weekly.p75, 0.5);
  EXPECT_LT(priv_p75, 0.35);
  EXPECT_LT(pub_p75, 0.35);
  // Private daily profile swings with working hours; public is flatter.
  auto swing = [](const std::vector<double>& profile) {
    double lo = 1e9, hi = -1e9;
    for (double v : profile) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  EXPECT_GT(swing(priv.daily_p50), 1.5 * swing(pub.daily_p50));
}

TEST_F(ScenarioIntegration, Fig7aPrivateNodeCorrelationHigher) {
  const auto priv = analysis::node_vm_correlations(AnalysisContext(trace()),
                                                   CloudType::kPrivate, 120);
  const auto pub =
      analysis::node_vm_correlations(AnalysisContext(trace()), CloudType::kPublic, 120);
  ASSERT_GT(priv.size(), 30u);
  ASSERT_GT(pub.size(), 30u);
  const double priv_median = stats::quantile_sorted(priv, 0.5);
  const double pub_median = stats::quantile_sorted(pub, 0.5);
  EXPECT_GT(priv_median, 0.35);
  EXPECT_LT(pub_median, 0.30);
  EXPECT_GT(priv_median, pub_median + 0.25);
}

TEST_F(ScenarioIntegration, Fig7bPrivateCrossRegionCorrelationHigher) {
  const auto priv =
      analysis::cross_region_correlations(AnalysisContext(trace()), CloudType::kPrivate, 200);
  const auto pub =
      analysis::cross_region_correlations(AnalysisContext(trace()), CloudType::kPublic, 200);
  ASSERT_GT(priv.size(), 5u);
  ASSERT_GT(pub.size(), 5u);
  EXPECT_GT(stats::quantile_sorted(priv, 0.5),
            stats::quantile_sorted(pub, 0.5) + 0.2);
}

TEST_F(ScenarioIntegration, Fig7cRegionAgnosticServicesExistInPrivate) {
  const auto verdicts = analysis::detect_region_agnostic_services(AnalysisContext(trace()), CloudType::kPrivate, 0.7);
  ASSERT_FALSE(verdicts.empty());
  std::size_t agnostic = 0;
  for (const auto& v : verdicts) {
    if (v.region_agnostic) ++agnostic;
  }
  // "a substantial number of region-agnostic workloads exist in the
  // private cloud" — a majority of planted services are geo-balanced.
  EXPECT_GE(double(agnostic) / double(verdicts.size()), 0.4);
}

TEST_F(ScenarioIntegration, DetectorAgreesWithPlantedGroundTruth) {
  const auto verdicts = analysis::detect_region_agnostic_services(AnalysisContext(trace()), CloudType::kPrivate, 0.7);
  std::size_t correct = 0, total = 0;
  for (const auto& v : verdicts) {
    ++total;
    if (trace().service(v.service).region_agnostic == v.region_agnostic)
      ++correct;
  }
  ASSERT_GE(total, 3u);
  EXPECT_GE(double(correct) / double(total), 0.75);
}

TEST_F(ScenarioIntegration, AllocationFailureRateLow) {
  const auto& priv = scenario_->private_stats;
  const auto& pub = scenario_->public_stats;
  EXPECT_LT(double(priv.allocation_failures) /
                double(std::max<std::uint64_t>(1, priv.requested)),
            0.10);
  EXPECT_LT(double(pub.allocation_failures) /
                double(std::max<std::uint64_t>(1, pub.requested)),
            0.10);
}

}  // namespace
}  // namespace cloudlens
