#include "policies/oversub_placement.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::policies {
namespace {

class OversubPlacementTest : public ::testing::Test {
 protected:
  OversubPlacementTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
  NodeId node_{test::first_node(topo_, CloudType::kPublic)};
};

TEST_F(OversubPlacementTest, ConstantLowUtilConsolidatesHard) {
  // 16 VMs x 8 cores at flat 12.5% -> effective size 1 core each.
  for (int i = 0; i < 16; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 8, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.125));
  OversubPlacementOptions options;
  options.node_cores = 16;
  options.max_vms = 0;
  const auto report =
      simulate_oversubscribed_placement(fx_.trace, CloudType::kPublic, options);
  EXPECT_EQ(report.vms_packed, 16u);
  // Full sizing: 16*8/16 = 8 nodes; effective sizing: 16*1/16 = 1 node.
  EXPECT_EQ(report.baseline_nodes, 8u);
  EXPECT_EQ(report.oversub_nodes, 1u);
  EXPECT_NEAR(report.nodes_saved_fraction, 1.0 - 1.0 / 8.0, 1e-9);
  // Demand is exactly 16 cores on the single node: never above capacity.
  EXPECT_DOUBLE_EQ(report.hot_interval_share, 0.0);
  EXPECT_NEAR(report.worst_node_pressure, 1.0, 1e-9);
}

TEST_F(OversubPlacementTest, FullUtilizationCannotConsolidate) {
  for (int i = 0; i < 4; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 8, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(1.0));
  OversubPlacementOptions options;
  options.node_cores = 16;
  options.max_vms = 0;
  const auto report =
      simulate_oversubscribed_placement(fx_.trace, CloudType::kPublic, options);
  EXPECT_EQ(report.baseline_nodes, report.oversub_nodes);
  EXPECT_DOUBLE_EQ(report.nodes_saved_fraction, 0.0);
}

TEST_F(OversubPlacementTest, StricterSafetySavesFewerNodes) {
  workloads::DiurnalUtilization::Params p;
  for (int i = 0; i < 24; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 4, -kDay, kNoEnd,
               std::make_shared<workloads::DiurnalUtilization>(p, 100 + i));
  OversubPlacementOptions lax, strict;
  lax.node_cores = strict.node_cores = 16;
  lax.max_vms = strict.max_vms = 0;
  lax.safety_quantile = 0.90;
  strict.safety_quantile = 1.0;
  const auto lax_report =
      simulate_oversubscribed_placement(fx_.trace, CloudType::kPublic, lax);
  const auto strict_report =
      simulate_oversubscribed_placement(fx_.trace, CloudType::kPublic, strict);
  EXPECT_LE(lax_report.oversub_nodes, strict_report.oversub_nodes);
  EXPECT_GE(lax_report.hot_interval_share, 0.0);
  // Lax packing runs hotter than strict packing.
  EXPECT_GE(lax_report.worst_node_pressure,
            strict_report.worst_node_pressure - 1e-9);
}

TEST_F(OversubPlacementTest, EmptyPopulationSafe) {
  const auto report =
      simulate_oversubscribed_placement(fx_.trace, CloudType::kPublic);
  EXPECT_EQ(report.vms_packed, 0u);
  EXPECT_EQ(report.baseline_nodes, 0u);
}

TEST_F(OversubPlacementTest, OversizedVmsSkipped) {
  OversubPlacementOptions options;
  options.node_cores = 4;
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 8, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));
  const auto report =
      simulate_oversubscribed_placement(fx_.trace, CloudType::kPublic, options);
  EXPECT_EQ(report.vms_packed, 0u);
}

}  // namespace
}  // namespace cloudlens::policies
