#include "workloads/generator.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "workloads/profiles.h"

namespace cloudlens::workloads {
namespace {

CloudProfile small_private() {
  auto p = CloudProfile::azure_private().scaled(0.05);
  return p;
}

CloudProfile small_public() { return CloudProfile::azure_public().scaled(0.05); }

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest()
      : topo_(build_topology(default_topology_spec())), trace_(&topo_) {}
  Topology topo_;
  TraceStore trace_;
};

TEST_F(GeneratorTest, RegistersServicesAndSubscriptions) {
  WorkloadGenerator gen(topo_, 1);
  gen.generate(small_private(), trace_);
  EXPECT_GT(trace_.services().size(), 0u);
  EXPECT_GE(trace_.subscriptions().size(), trace_.services().size());
  for (const auto& sub : trace_.subscriptions()) {
    EXPECT_EQ(sub.cloud, CloudType::kPrivate);
    EXPECT_EQ(sub.party, PartyType::kFirstParty);
    EXPECT_TRUE(sub.service.valid());
  }
}

TEST_F(GeneratorTest, ThirdPartySubscriptionsHaveNoService) {
  WorkloadGenerator gen(topo_, 2);
  gen.generate(small_public(), trace_);
  std::size_t third_party = 0;
  for (const auto& sub : trace_.subscriptions()) {
    if (sub.party == PartyType::kThirdParty) {
      ++third_party;
      EXPECT_FALSE(sub.service.valid());
    }
  }
  EXPECT_GT(third_party, 0u);
}

TEST_F(GeneratorTest, RequestsReferenceRegisteredSubscriptions) {
  WorkloadGenerator gen(topo_, 3);
  const auto requests = gen.generate(small_private(), trace_);
  ASSERT_FALSE(requests.empty());
  for (const auto& req : requests) {
    ASSERT_TRUE(req.request.subscription.valid());
    ASSERT_LT(req.request.subscription.value(), trace_.subscriptions().size());
    EXPECT_EQ(req.request.cloud, CloudType::kPrivate);
    ASSERT_TRUE(req.request.region.valid());
    ASSERT_LT(req.request.region.value(), topo_.regions().size());
    EXPECT_GT(req.request.cores, 0);
    EXPECT_LT(req.create, req.remove);
    ASSERT_NE(req.utilization, nullptr);
  }
}

TEST_F(GeneratorTest, EveryRequestCarriesPatternGroundTruth) {
  WorkloadGenerator gen(topo_, 4);
  const auto requests = gen.generate(small_public(), trace_);
  for (const auto& req : requests) {
    EXPECT_TRUE(
        ground_truth_pattern(req.utilization.get()).has_value());
  }
}

TEST_F(GeneratorTest, StandingPopulationPredatesWindow) {
  WorkloadGenerator gen(topo_, 5);
  const auto requests = gen.generate(small_private(), trace_);
  std::size_t standing = 0, churn = 0;
  for (const auto& req : requests) {
    if (req.create < 0) {
      ++standing;
    } else {
      ++churn;
      EXPECT_LT(req.create, kWeek);
    }
  }
  EXPECT_GT(standing, 0u);
  EXPECT_GT(churn, 0u);
}

TEST_F(GeneratorTest, DeterministicGivenSeed) {
  TraceStore trace_a(&topo_), trace_b(&topo_);
  WorkloadGenerator gen_a(topo_, 42), gen_b(topo_, 42);
  const auto ra = gen_a.generate(small_public(), trace_a);
  const auto rb = gen_b.generate(small_public(), trace_b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); i += 97) {
    EXPECT_EQ(ra[i].create, rb[i].create);
    EXPECT_EQ(ra[i].remove, rb[i].remove);
    EXPECT_EQ(ra[i].request.subscription, rb[i].request.subscription);
    EXPECT_DOUBLE_EQ(ra[i].request.cores, rb[i].request.cores);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  TraceStore trace_a(&topo_), trace_b(&topo_);
  WorkloadGenerator gen_a(topo_, 1), gen_b(topo_, 2);
  const auto ra = gen_a.generate(small_public(), trace_a);
  const auto rb = gen_b.generate(small_public(), trace_b);
  EXPECT_NE(ra.size(), rb.size());
}

TEST_F(GeneratorTest, SubscriptionRegionsBounded) {
  WorkloadGenerator gen(topo_, 6);
  const auto requests = gen.generate(small_private(), trace_);
  std::unordered_map<SubscriptionId, std::unordered_set<RegionId>> regions;
  for (const auto& req : requests)
    regions[req.request.subscription].insert(req.request.region);
  for (const auto& [_, set] : regions) {
    EXPECT_GE(set.size(), 1u);
    EXPECT_LE(set.size(), topo_.regions().size());
  }
}


TEST_F(GeneratorTest, PatternBalancerTracksVmWeightedMix) {
  // The VM-weighted realized pattern shares must track the configured mix
  // even at small scale, despite heavy-tailed deployment sizes (this is
  // what the largest-remainder balancer buys; see Fig. 5(d)).
  auto profile = CloudProfile::azure_private().scaled(0.15);
  profile.pattern_mix = {0.5, 0.3, 0.1, 0.1};
  const auto requests = WorkloadGenerator(topo_, 9).generate(profile, trace_);
  std::array<double, 4> vm_share{};
  double total = 0;
  for (const auto& req : requests) {
    if (req.create >= 0) continue;  // standing population only
    const auto truth = ground_truth_pattern(req.utilization.get());
    ASSERT_TRUE(truth.has_value());
    vm_share[static_cast<std::size_t>(*truth)] += 1;
    total += 1;
  }
  ASSERT_GT(total, 500);
  // An owner's whole deployment carries one pattern, so the residual is
  // bounded by the largest single deployment's share of total VMs.
  EXPECT_NEAR(vm_share[0] / total, 0.5, 0.06);  // diurnal
  EXPECT_NEAR(vm_share[1] / total, 0.3, 0.06);  // stable
  EXPECT_NEAR(vm_share[2] / total, 0.1, 0.06);  // irregular
  EXPECT_NEAR(vm_share[3] / total, 0.1, 0.06);  // hourly-peak
}

TEST_F(GeneratorTest, SkuCatalogShapesRespectProfile) {
  WorkloadGenerator gen(topo_, 10);
  const auto requests = gen.generate(small_private(), trace_);
  const auto& catalog = CloudProfile::azure_private().catalog;
  for (std::size_t i = 0; i < requests.size(); i += 53) {
    bool known = false;
    for (const auto& sku : catalog.skus()) {
      if (requests[i].request.cores == sku.cores &&
          requests[i].request.memory_gb == sku.memory_gb)
        known = true;
    }
    EXPECT_TRUE(known) << "request shape not in the profile catalog";
  }
}

TEST(ScenarioTest, MakeScenarioRunsBothClouds) {
  ScenarioOptions options;
  options.scale = 0.05;
  options.seed = 7;
  const auto scenario = make_scenario(options);
  EXPECT_GT(scenario.private_stats.placed, 0u);
  EXPECT_GT(scenario.public_stats.placed, 0u);

  std::size_t private_vms = 0, public_vms = 0;
  for (const auto& vm : scenario.trace->vms()) {
    (vm.cloud == CloudType::kPrivate ? private_vms : public_vms)++;
  }
  EXPECT_GT(private_vms, 100u);
  EXPECT_GT(public_vms, 100u);
}

TEST(ScenarioTest, VmsLandInMatchingClusters) {
  ScenarioOptions options;
  options.scale = 0.05;
  const auto scenario = make_scenario(options);
  for (const auto& vm : scenario.trace->vms()) {
    ASSERT_TRUE(vm.placed());
    const auto& cluster = scenario.topology->cluster(vm.cluster);
    EXPECT_EQ(cluster.cloud, vm.cloud);
    EXPECT_EQ(cluster.region, vm.region);
  }
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
  ScenarioOptions options;
  options.scale = 0.05;
  options.seed = 99;
  const auto a = make_scenario(options);
  const auto b = make_scenario(options);
  EXPECT_EQ(a.trace->vms().size(), b.trace->vms().size());
  EXPECT_EQ(a.private_stats.placed, b.private_stats.placed);
  EXPECT_EQ(a.public_stats.placed, b.public_stats.placed);
}

TEST(CloudProfileTest, FactoriesEncodePaperContrasts) {
  const auto priv = CloudProfile::azure_private();
  const auto pub = CloudProfile::azure_public();
  EXPECT_GT(priv.deploy_size_mu, pub.deploy_size_mu);          // Fig. 1(a)
  EXPECT_GT(pub.third_party_subscriptions,
            priv.first_party_services * 10);                   // Fig. 1(b)
  EXPECT_GT(priv.pattern_mix.diurnal, pub.pattern_mix.diurnal);  // Fig. 5(d)
  EXPECT_GT(pub.pattern_mix.stable, priv.pattern_mix.stable);
  EXPECT_GT(priv.pattern_mix.hourly_peak, pub.pattern_mix.hourly_peak);
  EXPECT_GT(priv.region_agnostic_prob, pub.region_agnostic_prob);  // Fig. 7
  EXPECT_GT(priv.burst_churn.bursts_per_week, 0);              // Fig. 3(c)
  EXPECT_DOUBLE_EQ(pub.burst_churn.bursts_per_week, 0);
  EXPECT_GT(pub.lifetime.shortest_bin_share(),
            priv.lifetime.shortest_bin_share());               // Fig. 3(a)
  EXPECT_GT(pub.region_count_weights[0], priv.region_count_weights[0]);
}

TEST(CloudProfileTest, ScaledShrinksPopulation) {
  const auto base = CloudProfile::azure_public();
  const auto half = base.scaled(0.5);
  EXPECT_EQ(half.third_party_subscriptions,
            base.third_party_subscriptions / 2);
  EXPECT_NEAR(half.diurnal_churn.base_per_hour,
              base.diurnal_churn.base_per_hour / 2, 1e-9);
  // Non-population parameters are untouched.
  EXPECT_DOUBLE_EQ(half.deploy_size_mu, base.deploy_size_mu);
}

TEST(CloudProfileTest, ScaledNeverDropsToZero) {
  const auto tiny = CloudProfile::azure_private().scaled(0.001);
  EXPECT_GE(tiny.first_party_services, 1);
}

}  // namespace
}  // namespace cloudlens::workloads
