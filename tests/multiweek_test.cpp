// Multi-week horizons (the paper's threats-to-validity notes its one-week
// window; cloudlens supports longer observation windows so seasonality can
// be probed). These tests pin the horizon plumbing and week-over-week
// consistency.
#include <gtest/gtest.h>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/temporal.h"
#include "common/check.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

class MultiWeekTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::ScenarioOptions options;
    options.scale = 0.06;
    options.seed = 77;
    options.horizon = 2 * kWeek;
    scenario_ = new workloads::Scenario(workloads::make_scenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static workloads::Scenario* scenario_;
};

workloads::Scenario* MultiWeekTest::scenario_ = nullptr;

TEST_F(MultiWeekTest, TelemetryGridSpansHorizon) {
  const TimeGrid& grid = scenario_->trace->telemetry_grid();
  EXPECT_EQ(grid.end(), 2 * kWeek);
  EXPECT_EQ(grid.count, 2u * 2016u);
}

TEST_F(MultiWeekTest, ChurnCoversBothWeeks) {
  std::size_t week1 = 0, week2 = 0;
  for (const auto& vm : scenario_->trace->vms()) {
    if (vm.created >= 0 && vm.created < kWeek) ++week1;
    if (vm.created >= kWeek && vm.created < 2 * kWeek) ++week2;
  }
  EXPECT_GT(week1, 100u);
  EXPECT_GT(week2, 100u);
  // Stationary churn: the two weeks see comparable creation volume.
  const double ratio = double(week1) / double(week2);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST_F(MultiWeekTest, WeekOverWeekLifetimeShareConsistent) {
  const auto week1 =
      analysis::vm_lifetimes(AnalysisContext(*scenario_->trace), CloudType::kPublic, 0, kWeek);
  const auto week2 = analysis::vm_lifetimes(AnalysisContext(*scenario_->trace),
                                            CloudType::kPublic, kWeek,
                                            2 * kWeek);
  ASSERT_GT(week1.size(), 100u);
  ASSERT_GT(week2.size(), 100u);
  EXPECT_NEAR(analysis::shortest_bin_share(week1),
              analysis::shortest_bin_share(week2), 0.05);
}

TEST_F(MultiWeekTest, WeekOverWeekCreationCurvesConsistent) {
  const TimeGrid w1{0, kHour, 168}, w2{kWeek, kHour, 168};
  const auto c1 = analysis::creations_per_hour(AnalysisContext(*scenario_->trace),
                                               CloudType::kPublic,
                                               RegionId(), w1);
  const auto c2 = analysis::creations_per_hour(AnalysisContext(*scenario_->trace),
                                               CloudType::kPublic,
                                               RegionId(), w2);
  EXPECT_NEAR(c1.mean(), c2.mean(), 0.15 * std::max(c1.mean(), c2.mean()));
  // The two weeks' diurnal shapes correlate strongly.
  EXPECT_GT(stats::pearson(c1.values(), c2.values()), 0.6);
}

TEST_F(MultiWeekTest, PatternsClassifiableOverTwoWeeks) {
  const auto mix = analysis::classify_population(AnalysisContext(*scenario_->trace),
                                                 CloudType::kPrivate, 150);
  EXPECT_GT(mix.classified, 50u);
  EXPECT_GT(mix.diurnal, mix.irregular);
}

TEST(MultiWeekOptionsTest, NonAlignedHorizonRejected) {
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.horizon = kWeek + 17;  // not a multiple of the telemetry interval
  EXPECT_THROW(workloads::make_scenario(options), CheckError);
}

}  // namespace
}  // namespace cloudlens
