#include "analysis/context.h"
#include "policies/advisor.h"

#include <gtest/gtest.h>

#include "kb/extractor.h"
#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::policies {
namespace {

using workloads::DiurnalUtilization;
using workloads::HourlyPeakUtilization;
using workloads::StableUtilization;

class AdvisorTest : public ::testing::Test {
 protected:
  AdvisorTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  SubscriptionId add_sub(CloudType cloud) {
    SubscriptionInfo info;
    info.cloud = cloud;
    return fx_.trace.add_subscription(info);
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(AdvisorTest, RoutesOwnersToMatchingPolicies) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);

  // Spot candidate: many short-lived VMs.
  const SubscriptionId churner = add_sub(CloudType::kPublic);
  for (int i = 0; i < 10; ++i)
    fx_.add_vm(CloudType::kPublic, churner, node, 1, i * kHour,
               i * kHour + 10 * kMinute);

  // Oversubscription candidate: stable low utilization.
  const SubscriptionId steady = add_sub(CloudType::kPublic);
  StableUtilization::Params sp;
  sp.level = 0.12;
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, steady, node, 2, -kDay, kNoEnd,
               std::make_shared<StableUtilization>(sp, 10 + i));

  // Pre-provisioning candidate: hourly-peak.
  const SubscriptionId bursty = add_sub(CloudType::kPublic);
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, bursty, node, 2, -kDay, kNoEnd,
               std::make_shared<HourlyPeakUtilization>(
                   HourlyPeakUtilization::Params{}, 20 + i));

  const kb::KnowledgeBase knowledge(kb::extract_all(AnalysisContext(fx_.trace)));
  const auto report = advise(fx_.trace, knowledge, CloudType::kPublic);

  EXPECT_GE(report.count(ActionKind::kAdoptSpot), 1u);
  EXPECT_GE(report.count(ActionKind::kOversubscribe), 1u);
  EXPECT_GE(report.count(ActionKind::kPreprovision), 1u);

  bool churner_spot = false;
  for (const auto& r : report.recommendations) {
    if (r.subscription == churner && r.action == ActionKind::kAdoptSpot)
      churner_spot = true;
  }
  EXPECT_TRUE(churner_spot);
  EXPECT_GT(report.spot.candidate_share, 0.9);
}

TEST_F(AdvisorTest, RegionAgnosticOwnersFlaggedForRebalance) {
  const NodeId n0 = test::first_node(topo_, CloudType::kPrivate);
  const auto clusters1 = topo_.clusters_in(RegionId(1), CloudType::kPrivate);
  const NodeId n1 = topo_.cluster(clusters1[0]).nodes.front();

  DiurnalUtilization::Params p;
  p.tz_offset_hours = -5;
  for (int i = 0; i < 3; ++i) {
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n0, 2, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(p, 30 + i));
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n1, 2, -kDay, kNoEnd,
               std::make_shared<DiurnalUtilization>(p, 40 + i), RegionId(1));
  }
  const kb::KnowledgeBase knowledge(kb::extract_all(AnalysisContext(fx_.trace)));
  const auto report = advise(fx_.trace, knowledge, CloudType::kPrivate);
  EXPECT_GE(report.count(ActionKind::kRegionRebalance), 1u);
}

TEST_F(AdvisorTest, RenderMentionsActionsAndCounts) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  const SubscriptionId churner = add_sub(CloudType::kPublic);
  for (int i = 0; i < 10; ++i)
    fx_.add_vm(CloudType::kPublic, churner, node, 1, i * kHour,
               i * kHour + 10 * kMinute);
  const kb::KnowledgeBase knowledge(kb::extract_all(AnalysisContext(fx_.trace)));
  const auto report = advise(fx_.trace, knowledge, CloudType::kPublic);
  const std::string text = render_report(fx_.trace, report);
  EXPECT_NE(text.find("adopt-spot"), std::string::npos);
  EXPECT_NE(text.find("oversubscribe"), std::string::npos);
  EXPECT_NE(text.find("top recommendations"), std::string::npos);
}

TEST_F(AdvisorTest, EmptyKnowledgeBaseYieldsNoRecommendations) {
  const kb::KnowledgeBase empty;
  const auto report = advise(fx_.trace, empty, CloudType::kPublic);
  EXPECT_TRUE(report.recommendations.empty());
}

TEST(ActionKindTest, Names) {
  EXPECT_EQ(to_string(ActionKind::kAdoptSpot), "adopt-spot");
  EXPECT_EQ(to_string(ActionKind::kOversubscribe), "oversubscribe");
  EXPECT_EQ(to_string(ActionKind::kDeferToValley), "defer-to-valley");
  EXPECT_EQ(to_string(ActionKind::kPreprovision), "preprovision");
  EXPECT_EQ(to_string(ActionKind::kRegionRebalance), "region-rebalance");
}

}  // namespace
}  // namespace cloudlens::policies
