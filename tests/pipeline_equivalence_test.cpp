// End-to-end equivalence pins for the cached pipeline: a snapshot-loaded
// trace must reproduce fresh generation *byte-for-byte* — same
// characterization report, same figure CSVs — at any thread count, and a
// warm cache must actually skip the generate + panel work (observed via
// the pipeline.* counters, not timing).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "analysis/figures.h"
#include "analysis/report.h"
#include "obs/metrics.h"
#include "pipeline/run_plan.h"

namespace cloudlens::pipeline {
namespace {

namespace fs = std::filesystem;

struct RunOutput {
  std::string report;
  std::map<std::string, std::string> figures;
  std::vector<StageReport> stages;
};

RunPlanOptions plan_options(const std::string& cache_dir, bool cache_enabled,
                            std::size_t threads,
                            obs::MetricsRegistry* metrics = nullptr) {
  RunPlanOptions options;
  options.scenario.scale = 0.03;
  options.scenario.seed = 11;
  options.cache_dir = cache_dir;
  options.cache_enabled = cache_enabled;
  options.parallel = ParallelConfig::with_threads(threads);
  options.metrics = metrics;
  return options;
}

/// Resolve the plan, then render the report and every figure CSV into
/// memory so runs can be compared byte-for-byte.
RunOutput run_and_render(const RunPlanOptions& options) {
  RunOutput out;
  const ResolvedRun run = run_trace_plan(options);
  out.stages = run.reports;

  const AnalysisContext ctx(*run.trace->trace, options.parallel);
  std::ostringstream report;
  analysis::write_characterization_report(ctx, report);
  out.report = report.str();

  std::map<std::string, std::ostringstream> streams;
  analysis::write_figure_csvs(
      ctx, [&](const std::string& name) -> std::ostream& {
        return streams[name];
      });
  for (auto& [name, stream] : streams) out.figures[name] = stream.str();
  return out;
}

StageReport::Source source_of(const RunOutput& out, const std::string& name) {
  for (const auto& report : out.stages) {
    if (report.name == name) return report.source;
  }
  ADD_FAILURE() << "no stage report for " << name;
  return StageReport::Source::kComputed;
}

class PipelineEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("cloudlens_equiv_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(PipelineEquivalenceTest, ReportAndFiguresBitIdenticalColdWarmThreads) {
  // Uncached single-threaded run: the ground truth bytes.
  const RunOutput fresh = run_and_render(plan_options("", false, 1));
  ASSERT_FALSE(fresh.report.empty());
  ASSERT_FALSE(fresh.figures.empty());
  EXPECT_EQ(source_of(fresh, "trace"), StageReport::Source::kComputed);

  // Cold cached run at 8 threads: computes + stores, same bytes.
  const RunOutput cold = run_and_render(plan_options(dir_, true, 8));
  EXPECT_EQ(source_of(cold, "trace"), StageReport::Source::kComputedAndStored);
  EXPECT_EQ(source_of(cold, "panel"), StageReport::Source::kComputedAndStored);
  EXPECT_EQ(cold.report, fresh.report);
  EXPECT_EQ(cold.figures, fresh.figures);

  // Warm run back at 1 thread: trace and panel come off disk, and the
  // snapshot round trip must not move a single byte of any output.
  const RunOutput warm = run_and_render(plan_options(dir_, true, 1));
  EXPECT_EQ(source_of(warm, "trace"), StageReport::Source::kCacheHit);
  EXPECT_EQ(source_of(warm, "panel"), StageReport::Source::kCacheHit);
  EXPECT_EQ(warm.report, fresh.report);
  EXPECT_EQ(warm.figures, fresh.figures);
}

TEST_F(PipelineEquivalenceTest, WarmCacheSkipsGenerateAndPanelWork) {
  // pipeline.* counters go to the registry the plan was handed; the
  // generator and the panel build record against the process-global
  // registry (they have no context parameter), so watch both.
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  auto& global = obs::MetricsRegistry::global();
  global.reset();
  global.set_enabled(true);

  RunPlanOptions options = plan_options(dir_, true, 2, &metrics);
  options.scenario.scale = 0.02;
  run_trace_plan(options);
  auto cold = metrics.snapshot();
  EXPECT_EQ(cold.counter("pipeline.stage_runs"), 2u);
  EXPECT_EQ(cold.counter("pipeline.cache_misses"), 2u);
  EXPECT_EQ(cold.counter("pipeline.cache_stores"), 2u);
  EXPECT_EQ(cold.counter("pipeline.cache_hits"), 0u);
  EXPECT_GT(cold.counter("pipeline.cache_bytes_written"), 0u);
  // The cold run actually generated (one run per cloud) and built the
  // panel.
  auto cold_global = global.snapshot();
  EXPECT_EQ(cold_global.counter("gen.runs"), 2u);
  EXPECT_EQ(cold_global.counter("panel.builds"), 1u);

  metrics.reset();
  global.reset();
  run_trace_plan(options);
  auto warm = metrics.snapshot();
  EXPECT_EQ(warm.counter("pipeline.stage_runs"), 2u);
  EXPECT_EQ(warm.counter("pipeline.cache_hits"), 2u);
  EXPECT_EQ(warm.counter("pipeline.cache_misses"), 0u);
  EXPECT_EQ(warm.counter("pipeline.cache_stores"), 0u);
  EXPECT_GT(warm.counter("pipeline.cache_bytes_read"), 0u);
  // Warm runs never regenerate the workload or rebuild the panel.
  auto warm_global = global.snapshot();
  EXPECT_EQ(warm_global.counter("gen.runs"), 0u);
  EXPECT_EQ(warm_global.counter("panel.builds"), 0u);
  global.set_enabled(false);
}

}  // namespace
}  // namespace cloudlens::pipeline
