// End-to-end equivalence pins for the cached pipeline: a snapshot-loaded
// trace must reproduce fresh generation *byte-for-byte* — same
// characterization report, same figure CSVs — at any thread count, and a
// warm cache must actually skip the generate + panel work (observed via
// the pipeline.* counters, not timing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "analysis/figures.h"
#include "analysis/report.h"
#include "obs/metrics.h"
#include "pipeline/run_plan.h"
#include "stats/kernels/dispatch.h"

namespace cloudlens::pipeline {
namespace {

namespace fs = std::filesystem;

struct RunOutput {
  std::string report;
  std::map<std::string, std::string> figures;
  std::vector<StageReport> stages;
};

RunPlanOptions plan_options(const std::string& cache_dir, bool cache_enabled,
                            std::size_t threads,
                            obs::MetricsRegistry* metrics = nullptr) {
  RunPlanOptions options;
  options.scenario.scale = 0.03;
  options.scenario.seed = 11;
  options.cache_dir = cache_dir;
  options.cache_enabled = cache_enabled;
  options.parallel = ParallelConfig::with_threads(threads);
  options.metrics = metrics;
  return options;
}

/// Resolve the plan, then render the report and every figure CSV into
/// memory so runs can be compared byte-for-byte.
RunOutput run_and_render(const RunPlanOptions& options) {
  RunOutput out;
  const ResolvedRun run = run_trace_plan(options);
  out.stages = run.reports;

  const AnalysisContext ctx(*run.trace->trace, options.parallel);
  std::ostringstream report;
  analysis::write_characterization_report(ctx, report);
  out.report = report.str();

  std::map<std::string, std::ostringstream> streams;
  analysis::write_figure_csvs(
      ctx, [&](const std::string& name) -> std::ostream& {
        return streams[name];
      });
  for (auto& [name, stream] : streams) out.figures[name] = stream.str();
  return out;
}

StageReport::Source source_of(const RunOutput& out, const std::string& name) {
  for (const auto& report : out.stages) {
    if (report.name == name) return report.source;
  }
  ADD_FAILURE() << "no stage report for " << name;
  return StageReport::Source::kComputed;
}

class PipelineEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("cloudlens_equiv_") + info->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(PipelineEquivalenceTest, ReportAndFiguresBitIdenticalColdWarmThreads) {
  // Uncached single-threaded run: the ground truth bytes.
  const RunOutput fresh = run_and_render(plan_options("", false, 1));
  ASSERT_FALSE(fresh.report.empty());
  ASSERT_FALSE(fresh.figures.empty());
  EXPECT_EQ(source_of(fresh, "trace"), StageReport::Source::kComputed);

  // Cold cached run at 8 threads: computes + stores, same bytes.
  const RunOutput cold = run_and_render(plan_options(dir_, true, 8));
  EXPECT_EQ(source_of(cold, "trace"), StageReport::Source::kComputedAndStored);
  EXPECT_EQ(source_of(cold, "panel"), StageReport::Source::kComputedAndStored);
  EXPECT_EQ(cold.report, fresh.report);
  EXPECT_EQ(cold.figures, fresh.figures);

  // Warm run back at 1 thread: trace and panel come off disk, and the
  // snapshot round trip must not move a single byte of any output.
  const RunOutput warm = run_and_render(plan_options(dir_, true, 1));
  EXPECT_EQ(source_of(warm, "trace"), StageReport::Source::kCacheHit);
  EXPECT_EQ(source_of(warm, "panel"), StageReport::Source::kCacheHit);
  EXPECT_EQ(warm.report, fresh.report);
  EXPECT_EQ(warm.figures, fresh.figures);
}

TEST_F(PipelineEquivalenceTest, WarmCacheSkipsGenerateAndPanelWork) {
  // pipeline.* counters go to the registry the plan was handed; the
  // generator and the panel build record against the process-global
  // registry (they have no context parameter), so watch both.
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  auto& global = obs::MetricsRegistry::global();
  global.reset();
  global.set_enabled(true);

  RunPlanOptions options = plan_options(dir_, true, 2, &metrics);
  options.scenario.scale = 0.02;
  run_trace_plan(options);
  auto cold = metrics.snapshot();
  EXPECT_EQ(cold.counter("pipeline.stage_runs"), 2u);
  EXPECT_EQ(cold.counter("pipeline.cache_misses"), 2u);
  EXPECT_EQ(cold.counter("pipeline.cache_stores"), 2u);
  EXPECT_EQ(cold.counter("pipeline.cache_hits"), 0u);
  EXPECT_GT(cold.counter("pipeline.cache_bytes_written"), 0u);
  // The cold run actually generated (one run per cloud) and built the
  // panel.
  auto cold_global = global.snapshot();
  EXPECT_EQ(cold_global.counter("gen.runs"), 2u);
  EXPECT_EQ(cold_global.counter("panel.builds"), 1u);

  metrics.reset();
  global.reset();
  run_trace_plan(options);
  auto warm = metrics.snapshot();
  EXPECT_EQ(warm.counter("pipeline.stage_runs"), 2u);
  EXPECT_EQ(warm.counter("pipeline.cache_hits"), 2u);
  EXPECT_EQ(warm.counter("pipeline.cache_misses"), 0u);
  EXPECT_EQ(warm.counter("pipeline.cache_stores"), 0u);
  EXPECT_GT(warm.counter("pipeline.cache_bytes_read"), 0u);
  // Warm runs never regenerate the workload or rebuild the panel.
  auto warm_global = global.snapshot();
  EXPECT_EQ(warm_global.counter("gen.runs"), 0u);
  EXPECT_EQ(warm_global.counter("panel.builds"), 0u);
  global.set_enabled(false);
}

// --- Kernel tier × mode equivalence --------------------------------------

namespace kernels = stats::kernels;

/// Restores the kernel dispatch config when a test block exits.
class DispatchRestore {
 public:
  ~DispatchRestore() { kernels::reset_from_env(); }
};

TEST_F(PipelineEquivalenceTest, StrictModeBitIdenticalAcrossKernelTiers) {
  // Strict mode's whole contract: the report and every figure CSV are
  // byte-identical whether kernels run scalar or SIMD, fresh or loaded
  // from a snapshot, at 1 or 8 threads.
  DispatchRestore restore;
  kernels::set_active({kernels::Tier::kScalar, kernels::Mode::kStrict});
  const RunOutput reference = run_and_render(plan_options("", false, 1));
  ASSERT_FALSE(reference.report.empty());

  for (const auto tier :
       {kernels::Tier::kScalar, kernels::Tier::kSse2, kernels::Tier::kAvx2}) {
    if (!kernels::tier_supported(tier)) continue;
    SCOPED_TRACE(std::string("tier=") + std::string(kernels::to_string(tier)));
    kernels::set_active({tier, kernels::Mode::kStrict});
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      // Fresh (uncached) run.
      const RunOutput fresh =
          run_and_render(plan_options("", false, threads));
      EXPECT_EQ(fresh.report, reference.report) << threads << " threads";
      EXPECT_EQ(fresh.figures, reference.figures) << threads << " threads";
    }
    // Snapshot round trip under this tier: cold stores, warm loads; both
    // must reproduce the reference bytes. Per-tier cache dir keeps the
    // cold/warm sequence self-contained.
    const std::string tier_dir =
        dir_ + "_" + std::string(kernels::to_string(tier));
    fs::remove_all(tier_dir);
    const RunOutput cold = run_and_render(plan_options(tier_dir, true, 8));
    EXPECT_EQ(source_of(cold, "trace"),
              StageReport::Source::kComputedAndStored);
    EXPECT_EQ(cold.report, reference.report);
    const RunOutput warm = run_and_render(plan_options(tier_dir, true, 1));
    EXPECT_EQ(source_of(warm, "trace"), StageReport::Source::kCacheHit);
    EXPECT_EQ(source_of(warm, "panel"), StageReport::Source::kCacheHit);
    EXPECT_EQ(warm.report, reference.report);
    EXPECT_EQ(warm.figures, reference.figures);
    fs::remove_all(tier_dir);
  }
}

/// Pull every "name,value" numeric cell out of a figure CSV body.
std::vector<double> numeric_cells(const std::string& csv) {
  std::vector<double> out;
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream cells(line);
    std::string cell;
    while (std::getline(cells, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end != cell.c_str() && end != nullptr && *end == '\0')
        out.push_back(v);
    }
  }
  return out;
}

TEST_F(PipelineEquivalenceTest, FastModeMatchesStrictWithinTolerance) {
  // Fast mode may reassociate the Pearson reduction, so outputs are not
  // pinned to bytes — but every numeric cell of every figure must agree
  // with strict mode within a loose tolerance (the correlation deltas
  // are ~1e-12; thresholded counts can only move if a value sits exactly
  // on a classifier edge, which the generated scenario does not).
  DispatchRestore restore;
  kernels::set_active({kernels::Tier::kScalar, kernels::Mode::kStrict});
  const RunOutput strict = run_and_render(plan_options("", false, 1));

  kernels::set_active({kernels::best_supported_tier(), kernels::Mode::kFast});
  const RunOutput fast = run_and_render(plan_options("", false, 1));

  ASSERT_EQ(fast.figures.size(), strict.figures.size());
  for (const auto& [name, strict_csv] : strict.figures) {
    ASSERT_TRUE(fast.figures.count(name) == 1) << name;
    const auto a = numeric_cells(strict_csv);
    const auto b = numeric_cells(fast.figures.at(name));
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-6 + 1e-6 * std::fabs(a[i]))
          << name << " cell " << i;
    }
  }
  // On hardware where the best tier IS scalar, fast == strict exactly;
  // either way the report must keep its shape (same line count).
  EXPECT_EQ(std::count(strict.report.begin(), strict.report.end(), '\n'),
            std::count(fast.report.begin(), fast.report.end(), '\n'));
}

TEST_F(PipelineEquivalenceTest, FastModeKbArtifactsDoNotPoisonStrictCache) {
  // kb artifacts computed in fast mode are keyed per (mode, tier); a
  // strict run after a fast run on the same cache must MISS the kb entry
  // (recompute) rather than load tier-tainted bytes.
  DispatchRestore restore;
  RunPlanOptions options = plan_options(dir_, true, 1);
  options.want_kb = true;

  kernels::set_active({kernels::best_supported_tier(), kernels::Mode::kFast});
  const ResolvedRun fast_run = run_trace_plan(options);
  ASSERT_TRUE(fast_run.knowledge != nullptr);

  kernels::set_active({kernels::Tier::kScalar, kernels::Mode::kStrict});
  const ResolvedRun strict_run = run_trace_plan(options);
  ASSERT_TRUE(strict_run.knowledge != nullptr);
  bool kb_seen = false;
  for (const auto& report : strict_run.reports) {
    if (report.name != "kb") continue;
    kb_seen = true;
    // Trace (and its bytes) are mode-independent, so it may hit; kb must
    // not have been satisfied by the fast-mode entry.
    EXPECT_NE(report.source, StageReport::Source::kCacheHit);
  }
  EXPECT_TRUE(kb_seen);

  // Strict kb entries ARE shared across tiers: a second strict run at a
  // different supported tier hits the cache.
  kernels::set_active({kernels::best_supported_tier(), kernels::Mode::kStrict});
  const ResolvedRun strict_again = run_trace_plan(options);
  for (const auto& report : strict_again.reports) {
    if (report.name == "kb") {
      EXPECT_EQ(report.source, StageReport::Source::kCacheHit);
    }
  }
}

}  // namespace
}  // namespace cloudlens::pipeline
