#include "policies/allocation_risk.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"

namespace cloudlens::policies {
namespace {

class AllocationRiskTest : public ::testing::Test {
 protected:
  // tiny_topology: private region 0 = 1 cluster x 2 racks x 4 nodes,
  // 16 cores per node = 128 cores total.
  AllocationRiskTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
  NodeId node_{test::first_node(topo_, CloudType::kPrivate)};
};

TEST_F(AllocationRiskTest, EmptyRegionAlwaysFits) {
  const auto report = assess_allocation_risk(
      fx_.trace, CloudType::kPrivate, RegionId(0), 8, 16.0);
  EXPECT_DOUBLE_EQ(report.failure_probability, 0.0);
  EXPECT_NEAR(report.mean_free_cores, 128.0, 1e-9);
}

TEST_F(AllocationRiskTest, OversizedDeploymentAlwaysFails) {
  const auto report = assess_allocation_risk(
      fx_.trace, CloudType::kPrivate, RegionId(0), 9, 16.0);  // 144 > 128
  EXPECT_DOUBLE_EQ(report.failure_probability, 1.0);
}

TEST_F(AllocationRiskTest, VmLargerThanNodeNeverFits) {
  const auto report = assess_allocation_risk(
      fx_.trace, CloudType::kPrivate, RegionId(0), 1, 17.0);
  EXPECT_DOUBLE_EQ(report.failure_probability, 1.0);
}

TEST_F(AllocationRiskTest, OccupancyRaisesRisk) {
  // Fill half the region for half the week.
  for (int n = 0; n < 8; ++n) {
    const auto clusters = topo_.clusters_in(RegionId(0), CloudType::kPrivate);
    const NodeId node = topo_.cluster(clusters[0]).nodes[n % 8];
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, 0, kWeek / 2);
  }
  // A 12x8-core deployment (96 cores) fails while occupancy holds 64 cores
  // (only 64 free), succeeds afterwards.
  const auto report = assess_allocation_risk(
      fx_.trace, CloudType::kPrivate, RegionId(0), 12, 8.0);
  EXPECT_GT(report.failure_probability, 0.3);
  EXPECT_LT(report.failure_probability, 0.7);
}

TEST_F(AllocationRiskTest, LargerDeploymentsRiskier) {
  // Insight 1: at the same occupancy, larger deployment sizes fail more.
  for (int n = 0; n < 8; ++n) {
    const auto clusters = topo_.clusters_in(RegionId(0), CloudType::kPrivate);
    const NodeId node = topo_.cluster(clusters[0]).nodes[n % 8];
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 10, 0, kNoEnd);
  }
  const auto small = assess_allocation_risk(fx_.trace, CloudType::kPrivate,
                                            RegionId(0), 2, 4.0);
  const auto large = assess_allocation_risk(fx_.trace, CloudType::kPrivate,
                                            RegionId(0), 16, 4.0);
  EXPECT_LE(small.failure_probability, large.failure_probability);
  EXPECT_DOUBLE_EQ(small.failure_probability, 0.0);
  EXPECT_DOUBLE_EQ(large.failure_probability, 1.0);  // 64 cores free < 64
                                                     // needed w/ 6-core gaps
}

TEST_F(AllocationRiskTest, FragmentationMatters) {
  // 8 nodes each with 10 cores used leaves 6 free per node: a 12-core VM
  // cannot fit anywhere even though 48 cores are free in total.
  for (int n = 0; n < 8; ++n) {
    const auto clusters = topo_.clusters_in(RegionId(0), CloudType::kPrivate);
    const NodeId node = topo_.cluster(clusters[0]).nodes[n % 8];
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 10, 0, kNoEnd);
  }
  const auto report = assess_allocation_risk(fx_.trace, CloudType::kPrivate,
                                             RegionId(0), 1, 12.0);
  EXPECT_DOUBLE_EQ(report.failure_probability, 1.0);
  EXPECT_GT(report.mean_free_cores, 40.0);
}

TEST_F(AllocationRiskTest, InvalidArgsThrow) {
  EXPECT_THROW(assess_allocation_risk(fx_.trace, CloudType::kPrivate,
                                      RegionId(0), 0, 4.0),
               CheckError);
  EXPECT_THROW(assess_allocation_risk(fx_.trace, CloudType::kPrivate,
                                      RegionId(0), 1, 0.0),
               CheckError);
}

}  // namespace
}  // namespace cloudlens::policies
