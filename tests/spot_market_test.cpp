#include "policies/spot_market.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"

namespace cloudlens::policies {
namespace {

class SpotMarketTest : public ::testing::Test {
 protected:
  // tiny_topology: public region 0 = 8 nodes x 16 cores = 128 cores.
  SpotMarketTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  /// Occupy `cores` cores of public region 0 over [begin, end).
  void occupy(double cores, SimTime begin, SimTime end) {
    const auto clusters = topo_.clusters_in(RegionId(0), CloudType::kPublic);
    std::size_t node_idx = 0;
    while (cores > 0) {
      const Cluster& cluster = topo_.cluster(clusters[0]);
      const NodeId node = cluster.nodes[node_idx++ % cluster.nodes.size()];
      const double grab = std::min(cores, 16.0);
      fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, grab, begin, end);
      cores -= grab;
    }
  }

  SpotMarketOptions options() {
    SpotMarketOptions o;
    o.region = RegionId(0);
    o.capacity_reserve = 0.0;
    o.jobs_per_hour = 2;
    o.job_cores = 4;
    o.job_duration = 2 * kHour;
    return o;
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(SpotMarketTest, EmptyRegionServesEverything) {
  const auto report = simulate_spot_market(fx_.trace, options());
  EXPECT_GT(report.jobs_submitted, 100u);
  EXPECT_EQ(report.jobs_evicted, 0u);
  EXPECT_EQ(report.jobs_rejected, 0u);
  EXPECT_DOUBLE_EQ(report.eviction_rate, 0.0);
  // Nearly every submitted job completes (jobs still running at the end of
  // the window are neither completed nor evicted).
  EXPECT_GT(double(report.jobs_completed) / double(report.jobs_submitted),
            0.95);
  EXPECT_GT(report.utilization_with_spot, report.utilization_before);
}

TEST_F(SpotMarketTest, FullRegionRejectsEverything) {
  occupy(128, -kDay, kNoEnd);
  const auto report = simulate_spot_market(fx_.trace, options());
  EXPECT_EQ(report.jobs_completed, 0u);
  EXPECT_EQ(report.jobs_rejected, report.jobs_submitted);
  EXPECT_DOUBLE_EQ(report.spot_core_hours, 0.0);
}

TEST_F(SpotMarketTest, DemandSurgeEvictsSpotJobs) {
  // Capacity free early; at day 2 the on-demand side takes everything.
  occupy(128, 2 * kDay, kNoEnd);
  auto o = options();
  o.job_duration = kWeek;  // long jobs guaranteed to be running at the surge
  o.jobs_per_hour = 1;
  const auto report = simulate_spot_market(fx_.trace, o);
  EXPECT_GT(report.jobs_evicted, 0u);
  // After the surge no spot capacity remains.
  const TimeGrid& grid = report.spot_cores.grid();
  for (std::size_t i = grid.index_of(2 * kDay) + 1; i < grid.count; i += 7)
    EXPECT_DOUBLE_EQ(report.spot_cores[i], 0.0);
}

TEST_F(SpotMarketTest, ReserveLimitsSpotFootprint) {
  auto o = options();
  o.capacity_reserve = 0.5;  // only 64 cores ever offered to spot
  o.jobs_per_hour = 30;      // saturate
  const auto report = simulate_spot_market(fx_.trace, o);
  for (std::size_t i = 0; i < report.spot_cores.size(); ++i)
    EXPECT_LE(report.spot_cores[i], 64.0 + 1e-9);
  EXPECT_GT(report.jobs_rejected, 0u);
}

TEST_F(SpotMarketTest, EvictionRiskConcentratesBeforeTheSurge) {
  // On-demand demand arrives every day at 09:00 and leaves at 17:00:
  // jobs submitted in the hours just before 09:00 get evicted.
  for (int day = 0; day < 7; ++day)
    occupy(120, day * kDay + 9 * kHour, day * kDay + 17 * kHour);
  auto o = options();
  o.job_duration = 6 * kHour;
  o.jobs_per_hour = 4;
  const auto report = simulate_spot_market(fx_.trace, o);
  ASSERT_GT(report.jobs_evicted, 0u);
  // Risk at 07:00 submissions far exceeds risk at 18:00 submissions.
  EXPECT_GT(report.eviction_risk_by_hour[7],
            report.eviction_risk_by_hour[18] + 0.2);
}

TEST_F(SpotMarketTest, MixturePolicyBeatsAllSpotOnCompletion) {
  for (int day = 0; day < 7; ++day)
    occupy(120, day * kDay + 9 * kHour, day * kDay + 17 * kHour);
  auto o = options();
  o.job_duration = 6 * kHour;
  o.jobs_per_hour = 4;
  const auto cmp = compare_mixture_policy(fx_.trace, o, 0.15);
  // Mixture completes more work than all-spot and costs less than all
  // on-demand.
  EXPECT_GT(cmp.mixture_completion, cmp.all_spot_completion);
  EXPECT_LT(cmp.mixture_cost, cmp.all_ondemand_cost);
}

TEST_F(SpotMarketTest, InvalidOptionsThrow) {
  auto o = options();
  o.capacity_reserve = 1.0;
  EXPECT_THROW(simulate_spot_market(fx_.trace, o), CheckError);
  o = options();
  o.job_cores = 0;
  EXPECT_THROW(simulate_spot_market(fx_.trace, o), CheckError);
}

}  // namespace
}  // namespace cloudlens::policies
