#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace cloudlens {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The child must not replay the parent stream.
  Rng parent_copy(5);
  (void)parent_copy();  // advance as fork() did
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_copy()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(2);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(std::uint64_t{10});
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (int h : hits) EXPECT_GT(h, 800);  // roughly uniform
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-3}, std::int64_t{3});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), CheckError);
}

TEST(RngTest, NormalMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(7);
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.lognormal(std::log(40.0), 0.8);
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  // Median of lognormal(mu, sigma) = exp(mu).
  EXPECT_NEAR(xs[25000], 40.0, 2.0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(8);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, ParetoRespectsScaleFloor) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, BoundedParetoStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.0, 100.0, 1.1);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(RngTest, GammaMeanMatchesShapeScale) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(sum / n, 6.0, 0.1);
}

TEST(RngTest, GammaSmallShapeBoost) {
  Rng rng(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.5, 1.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BetaStaysInUnitIntervalWithRightMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.beta(2.0, 4.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0 / 6.0, 0.01);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  Rng rng(static_cast<std::uint64_t>(lambda * 1000) + 17);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<double>(rng.poisson(lambda));
    sum += k;
    sq += k * k;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, std::max(0.05, lambda * 0.05));
  EXPECT_NEAR(var, lambda, std::max(0.1, lambda * 0.10));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMeanTest,
                         ::testing::Values(0.1, 1.0, 5.0, 25.0, 60.0, 200.0));

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(15);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  AliasTable table(w);
  std::vector<int> hits(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[table.sample(rng)];
  EXPECT_NEAR(hits[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / double(n), 0.3, 0.01);
  EXPECT_NEAR(hits[2] / double(n), 0.6, 0.01);
}

TEST(AliasTableTest, SingleEntryAlwaysZero) {
  Rng rng(16);
  AliasTable table(std::vector<double>{5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(17);
  AliasTable table(std::vector<double>{0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

TEST(AliasTableTest, RejectsAllZeroAndNegative) {
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}), CheckError);
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  Rng rng(18);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 100000; ++i) ++hits[zipf.sample(rng)];
  EXPECT_GT(hits[0], hits[9]);
  EXPECT_GT(hits[9], hits[99]);
  // Rank-1 to rank-2 ratio should be about 2^1.2.
  EXPECT_NEAR(double(hits[0]) / double(hits[1]), std::pow(2.0, 1.2), 0.35);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  Rng rng(19);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 50000; ++i) ++hits[zipf.sample(rng)];
  for (int h : hits) EXPECT_NEAR(h / 50000.0, 0.1, 0.02);
}

TEST(ZipfOnceTest, AgreesWithSampler) {
  Rng rng(20);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.zipf_once(50, 1.0) < 5) ++low;
  }
  // First 5 ranks of Zipf(s=1, n=50) hold ~51% of the mass.
  EXPECT_NEAR(low / 10000.0, 0.51, 0.04);
}

}  // namespace
}  // namespace cloudlens
