// Shared helpers for cloudlens tests: tiny topologies and hand-built traces
// with exactly known structure.
#pragma once

#include <memory>

#include "cloudsim/simulator.h"
#include "cloudsim/topology.h"
#include "cloudsim/trace.h"

namespace cloudlens::test {

/// 2 regions x 1 DC x 1 cluster per cloud x 2 racks x 4 nodes (32 nodes,
/// 16 per cloud), 16-core nodes.
inline Topology tiny_topology() {
  TopologySpec spec;
  spec.regions = {{"east", -5}, {"west", -8}};
  spec.datacenters_per_region = 1;
  spec.clusters_per_cloud = 1;
  spec.racks_per_cluster = 2;
  spec.nodes_per_rack = 4;
  spec.node_sku = NodeSku{"test-16", 16, 64};
  return build_topology(spec);
}

/// A trace wired to `topo` with one subscription per cloud pre-registered.
struct TraceFixture {
  explicit TraceFixture(const Topology& topo) : trace(&topo) {
    SubscriptionInfo priv;
    priv.cloud = CloudType::kPrivate;
    priv.party = PartyType::kFirstParty;
    private_sub = trace.add_subscription(priv);
    SubscriptionInfo pub;
    pub.cloud = CloudType::kPublic;
    pub.party = PartyType::kThirdParty;
    public_sub = trace.add_subscription(pub);
  }

  /// Add a placed VM with explicit placement onto the n-th node of the
  /// first cluster of `cloud` in region 0 (or a given node).
  VmId add_vm(CloudType cloud, SubscriptionId sub, NodeId node, double cores,
              SimTime created, SimTime deleted,
              std::shared_ptr<const UtilizationModel> util = nullptr,
              RegionId region = RegionId(0)) {
    VmRecord rec;
    rec.subscription = sub;
    rec.cloud = cloud;
    rec.party = trace.subscription(sub).party;
    rec.region = region;
    const Node& n = trace.topology().node(node);
    rec.cluster = n.cluster;
    rec.rack = n.rack;
    rec.node = node;
    rec.cores = cores;
    rec.memory_gb = cores * 4;
    rec.created = created;
    rec.deleted = deleted;
    rec.utilization = std::move(util);
    return trace.add_vm(std::move(rec));
  }

  TraceStore trace;
  SubscriptionId private_sub;
  SubscriptionId public_sub;
};

/// First node id of the first cluster of `cloud` in `topo`.
inline NodeId first_node(const Topology& topo, CloudType cloud) {
  for (const auto& cluster : topo.clusters()) {
    if (cluster.cloud == cloud) return cluster.nodes.front();
  }
  return NodeId();
}

}  // namespace cloudlens::test
