// Pipeline engine tests: content-hash behaviour, artifact-cache
// atomic store/lookup, runner memoization and hit/miss flow, key
// derivation invariants (inputs and options change keys; thread counts
// never do), and the run-plan stage graph end to end.
#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "pipeline/run_plan.h"

namespace cloudlens::pipeline {
namespace {

namespace fs = std::filesystem;

/// Unique empty directory under the test temp root, removed on teardown.
class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("cloudlens_") + info->test_suite_name() + "_" +
            info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  fs::path dir_;
};

TEST(ContentHashTest, DeterministicAndSensitive) {
  const auto key = [](auto&& fill) {
    ContentHash h;
    fill(h);
    return h.hex();
  };
  const std::string a = key([](ContentHash& h) { h.str("x"), h.u64(1); });
  EXPECT_EQ(a, key([](ContentHash& h) { h.str("x"), h.u64(1); }));
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, key([](ContentHash& h) { h.str("x"), h.u64(2); }));
  EXPECT_NE(a, key([](ContentHash& h) { h.str("y"), h.u64(1); }));

  // Length-prefixed strings: concatenation cannot collide.
  EXPECT_NE(key([](ContentHash& h) { h.str("ab"), h.str("c"); }),
            key([](ContentHash& h) { h.str("a"), h.str("bc"); }));
  // Doubles hash as bit patterns: -0.0 and +0.0 are distinct inputs.
  EXPECT_NE(key([](ContentHash& h) { h.f64(0.0); }),
            key([](ContentHash& h) { h.f64(-0.0); }));
}

TEST_F(TempDirTest, ArtifactCacheStoresAndLooksUp) {
  const ArtifactCache cache(dir());
  ASSERT_TRUE(cache.enabled());
  EXPECT_EQ(cache.lookup_size("s", "k"), 0u);

  const auto bytes = cache.store(
      "s", "k", [](std::ostream& out) { out << "payload"; });
  EXPECT_EQ(bytes, 7u);
  EXPECT_EQ(cache.lookup_size("s", "k"), 7u);

  std::ifstream in(cache.path_for("s", "k"), std::ios::binary);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "payload");

  // No temp litter after a successful store.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir())) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(ArtifactCacheTest, DisabledCacheIsInert) {
  const ArtifactCache off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.lookup_size("s", "k"), 0u);
  EXPECT_EQ(off.store("s", "k", [](std::ostream&) {}), 0u);

  const ArtifactCache flagged_off("/nonexistent", false);
  EXPECT_FALSE(flagged_off.enabled());
}

Stage string_stage(const std::string& name, const std::string& value,
                   int* compute_count,
                   std::vector<std::string> inputs = {}) {
  Stage s;
  s.name = name;
  s.inputs = std::move(inputs);
  s.key_extra = [value](ContentHash& h) { h.str(value); };
  s.compute = [value, compute_count](const StageInputs&) {
    if (compute_count != nullptr) ++*compute_count;
    return std::make_shared<std::string>(value);
  };
  s.save = [](const std::shared_ptr<void>& artifact, const StageInputs&,
              std::ostream& out) {
    out << *std::static_pointer_cast<std::string>(artifact);
  };
  s.load = [](const StageInputs&, std::istream& in) {
    std::stringstream buffer;
    buffer << in.rdbuf();
    return std::make_shared<std::string>(buffer.str());
  };
  return s;
}

TEST_F(TempDirTest, RunnerMemoizesWithinARun) {
  int computes = 0;
  PipelineRunner runner{ArtifactCache{}};
  runner.add(string_stage("a", "va", &computes));
  const auto first = runner.resolve_as<std::string>("a");
  const auto second = runner.resolve_as<std::string>("a");
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(runner.reports().size(), 1u);
  EXPECT_EQ(runner.reports()[0].source, StageReport::Source::kComputed);
  EXPECT_TRUE(runner.reports()[0].key_hex.empty());  // cache disabled
}

TEST_F(TempDirTest, ColdStoresThenWarmHits) {
  int computes = 0;
  {
    PipelineRunner cold{ArtifactCache{dir()}};
    cold.add(string_stage("a", "va", &computes));
    EXPECT_EQ(*cold.resolve_as<std::string>("a"), "va");
    ASSERT_EQ(cold.reports().size(), 1u);
    EXPECT_EQ(cold.reports()[0].source,
              StageReport::Source::kComputedAndStored);
    EXPECT_EQ(cold.reports()[0].artifact_bytes, 2u);
    EXPECT_EQ(computes, 1);
  }
  {
    PipelineRunner warm{ArtifactCache{dir()}};
    warm.add(string_stage("a", "va", &computes));
    EXPECT_EQ(*warm.resolve_as<std::string>("a"), "va");
    ASSERT_EQ(warm.reports().size(), 1u);
    EXPECT_EQ(warm.reports()[0].source, StageReport::Source::kCacheHit);
    EXPECT_EQ(computes, 1);  // loaded, not recomputed
  }
}

TEST_F(TempDirTest, KeyCoversOwnOptionsAndInputKeys) {
  PipelineRunner r1{ArtifactCache{dir()}};
  r1.add(string_stage("base", "v1", nullptr));
  r1.add(string_stage("child", "c", nullptr, {"base"}));

  PipelineRunner r2{ArtifactCache{dir()}};
  r2.add(string_stage("base", "v2", nullptr));  // changed upstream option
  r2.add(string_stage("child", "c", nullptr, {"base"}));

  PipelineRunner r3{ArtifactCache{dir()}};
  r3.add(string_stage("base", "v1", nullptr));
  r3.add(string_stage("child", "c2", nullptr, {"base"}));  // own option

  EXPECT_NE(r1.key_hex("base"), r2.key_hex("base"));
  // The child's key shifts when an *input's* key shifts...
  EXPECT_NE(r1.key_hex("child"), r2.key_hex("child"));
  // ...and when its own configuration changes.
  EXPECT_NE(r1.key_hex("child"), r3.key_hex("child"));
  // Same graph, same keys.
  PipelineRunner r4{ArtifactCache{dir()}};
  r4.add(string_stage("base", "v1", nullptr));
  r4.add(string_stage("child", "c", nullptr, {"base"}));
  EXPECT_EQ(r1.key_hex("child"), r4.key_hex("child"));
}

TEST_F(TempDirTest, MetricsCountHitsMissesAndBytes) {
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  {
    PipelineRunner cold(ArtifactCache{dir()}, {}, &metrics);
    cold.add(string_stage("a", "va", nullptr));
    cold.resolve("a");
  }
  auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counter("pipeline.stage_runs"), 1u);
  EXPECT_EQ(snap.counter("pipeline.cache_misses"), 1u);
  EXPECT_EQ(snap.counter("pipeline.cache_stores"), 1u);
  EXPECT_EQ(snap.counter("pipeline.cache_bytes_written"), 2u);
  EXPECT_EQ(snap.counter("pipeline.cache_hits"), 0u);

  metrics.reset();
  {
    PipelineRunner warm(ArtifactCache{dir()}, {}, &metrics);
    warm.add(string_stage("a", "va", nullptr));
    warm.resolve("a");
  }
  snap = metrics.snapshot();
  EXPECT_EQ(snap.counter("pipeline.cache_hits"), 1u);
  EXPECT_EQ(snap.counter("pipeline.cache_misses"), 0u);
  EXPECT_EQ(snap.counter("pipeline.cache_bytes_read"), 2u);
}

TEST(PipelineRunnerTest, DetectsCyclesAndUndeclaredInputs) {
  PipelineRunner runner{ArtifactCache{}};
  runner.add(string_stage("a", "va", nullptr, {"b"}));
  runner.add(string_stage("b", "vb", nullptr, {"a"}));
  EXPECT_THROW(runner.resolve("a"), CheckError);

  PipelineRunner undeclared{ArtifactCache{}};
  Stage sneaky;
  sneaky.name = "sneaky";
  sneaky.compute = [](const StageInputs& inputs) {
    return inputs.get<std::string>("base");  // never declared
  };
  undeclared.add(string_stage("base", "v", nullptr));
  undeclared.add(std::move(sneaky));
  undeclared.resolve("base");
  EXPECT_THROW(undeclared.resolve("sneaky"), CheckError);
}

TEST(PipelineRunnerTest, RejectsMalformedStages) {
  PipelineRunner runner{ArtifactCache{}};
  Stage unnamed;
  unnamed.compute = [](const StageInputs&) {
    return std::make_shared<int>(0);
  };
  EXPECT_THROW(runner.add(unnamed), CheckError);

  Stage half_cacheable = string_stage("x", "v", nullptr);
  half_cacheable.load = nullptr;
  EXPECT_THROW(runner.add(std::move(half_cacheable)), CheckError);

  runner.add(string_stage("dup", "v", nullptr));
  EXPECT_THROW(runner.add(string_stage("dup", "v", nullptr)), CheckError);
  EXPECT_THROW(runner.resolve("missing"), CheckError);
}

// --- run-plan key invariants (generated mode, trace stage only) ---------

std::vector<StageReport> plan_reports(const std::string& cache_dir,
                                      double scale, std::uint64_t seed,
                                      std::size_t threads,
                                      bool mutate_profile = false) {
  RunPlanOptions options;
  options.scenario.scale = scale;
  options.scenario.seed = seed;
  options.want_panel = false;
  options.cache_dir = cache_dir;
  options.parallel = ParallelConfig::with_threads(threads);
  if (mutate_profile) {
    options.scenario.private_profile.pattern_mix.diurnal += 0.01;
  }
  return run_trace_plan(options).reports;
}

TEST_F(TempDirTest, RunPlanKeyTracksIdentityButNeverThreads) {
  const auto cold = plan_reports(dir(), 0.02, 7, 1);
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(cold[0].source, StageReport::Source::kComputedAndStored);
  const std::string base_key = cold[0].key_hex;

  // Same identity at a different thread count: warm hit, same key.
  const auto warm = plan_reports(dir(), 0.02, 7, 4);
  EXPECT_EQ(warm[0].source, StageReport::Source::kCacheHit);
  EXPECT_EQ(warm[0].key_hex, base_key);

  // Seed, scale, and profile parameters are identity: key must move.
  EXPECT_NE(plan_reports(dir(), 0.02, 8, 1)[0].key_hex, base_key);
  EXPECT_NE(plan_reports(dir(), 0.021, 7, 1)[0].key_hex, base_key);
  EXPECT_NE(plan_reports(dir(), 0.02, 7, 1, true)[0].key_hex, base_key);
}

TEST_F(TempDirTest, RunPlanCacheDisabledNeverStores) {
  RunPlanOptions options;
  options.scenario.scale = 0.02;
  options.scenario.seed = 7;
  options.want_panel = false;
  options.cache_dir = dir();
  options.cache_enabled = false;
  const auto run = run_trace_plan(options);
  ASSERT_EQ(run.reports.size(), 1u);
  EXPECT_EQ(run.reports[0].source, StageReport::Source::kComputed);
  EXPECT_TRUE(fs::is_empty(dir()));
}

TEST(ShardBudgetFlagTest, NewFlagWinsAndAliasWarns) {
  // Neither flag: the fallback default, no warning.
  std::ostringstream quiet;
  EXPECT_EQ(resolve_shard_budget_mib(false, 256, false, 256, quiet, 128),
            128u);
  EXPECT_TRUE(quiet.str().empty());

  // Alias alone still works but emits the deprecation warning.
  std::ostringstream warn;
  EXPECT_EQ(resolve_shard_budget_mib(false, 256, true, 64, warn), 64u);
  EXPECT_NE(warn.str().find("--panel-budget-mib is deprecated"),
            std::string::npos);
  EXPECT_NE(warn.str().find("--shard-budget-mib"), std::string::npos);

  // The new flag wins; a conflicting alias value is called out.
  std::ostringstream conflict;
  EXPECT_EQ(resolve_shard_budget_mib(true, 96, true, 64, conflict), 96u);
  EXPECT_NE(conflict.str().find("--shard-budget-mib"), std::string::npos);

  // New flag alone: silent.
  std::ostringstream clean;
  EXPECT_EQ(resolve_shard_budget_mib(true, 96, false, 256, clean), 96u);
  EXPECT_TRUE(clean.str().empty());
}

TEST(StageTableTest, RendersOneRowPerReport) {
  StageReport hit;
  hit.name = "trace";
  hit.source = StageReport::Source::kCacheHit;
  hit.millis = 12.5;
  hit.key_hex = "0123456789abcdef0123456789abcdef";
  hit.artifact_bytes = 1234;
  StageReport computed;
  computed.name = "panel";
  const std::string table = render_stage_table({hit, computed});
  EXPECT_NE(table.find("trace"), std::string::npos);
  EXPECT_NE(table.find("hit"), std::string::npos);
  EXPECT_NE(table.find("0123456789ab.."), std::string::npos);
  EXPECT_NE(table.find("panel"), std::string::npos);
  EXPECT_NE(table.find("computed"), std::string::npos);
}

}  // namespace
}  // namespace cloudlens::pipeline
