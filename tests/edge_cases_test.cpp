// Cross-cutting edge-case coverage: error paths and boundary behaviour not
// exercised by the per-module suites.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/spatial.h"
#include "common/check.h"
#include "common/ids.h"
#include "common/parallel.h"
#include "cloudsim/trace_io.h"
#include "ingest/ingest.h"
#include "testutil.h"
#include "workloads/generator.h"
#include "workloads/profiles.h"

namespace cloudlens {
namespace {

TEST(CheckMacroTest, MessagesCarryContext) {
  try {
    CL_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("edge_cases_test.cpp"), std::string::npos);
  }
}

TEST(IdTest, StreamingAndValidity) {
  std::ostringstream os;
  os << NodeId(7) << ' ' << SubscriptionId(3) << ' ' << ServiceId();
  EXPECT_EQ(os.str(), "node-7 sub-3 svc-4294967295");
  EXPECT_FALSE(NodeId().valid());
  EXPECT_TRUE(NodeId(0).valid());
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(std::hash<NodeId>{}(NodeId(5)), std::hash<NodeId>{}(NodeId(5)));
}

TEST(ProfileValidationTest, DefaultsAreValid) {
  workloads::CloudProfile::azure_private().validate();
  workloads::CloudProfile::azure_public().validate();
  workloads::CloudProfile::azure_public().scaled(0.01).validate();
}

TEST(ProfileValidationTest, BadParametersRejected) {
  auto p = workloads::CloudProfile::azure_public();
  p.region_count_weights.clear();
  EXPECT_THROW(p.validate(), CheckError);

  p = workloads::CloudProfile::azure_public();
  p.pattern_mix = {0, 0, 0, 0};
  EXPECT_THROW(p.validate(), CheckError);

  p = workloads::CloudProfile::azure_public();
  p.region_agnostic_prob = 1.5;
  EXPECT_THROW(p.validate(), CheckError);

  p = workloads::CloudProfile::azure_public();
  p.first_party_services = 0;
  p.third_party_subscriptions = 0;
  EXPECT_THROW(p.validate(), CheckError);

  p = workloads::CloudProfile::azure_public();
  p.standing_end_prob = -0.1;
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(ProfileValidationTest, GeneratorRejectsInvalidProfile) {
  const Topology topo = test::tiny_topology();
  TraceStore trace(&topo);
  workloads::WorkloadGenerator gen(topo, 1);
  auto p = workloads::CloudProfile::azure_public();
  p.sku_mix_prob = 2.0;
  EXPECT_THROW(gen.generate(p, trace), CheckError);
}

TEST(TraceStoreEdgeTest, SetVmDeletedValidation) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  const VmId id =
      fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 2, kHour, kDay);
  // Cannot extend the life or terminate before creation.
  EXPECT_THROW(fx.trace.set_vm_deleted(id, 2 * kDay), CheckError);
  EXPECT_THROW(fx.trace.set_vm_deleted(id, kHour), CheckError);
  EXPECT_THROW(fx.trace.set_vm_deleted(VmId(99), kHour), CheckError);
  fx.trace.set_vm_deleted(id, 2 * kHour);
  EXPECT_EQ(fx.trace.vm(id).deleted, 2 * kHour);
}

TEST(SampledUtilizationEdgeTest, SingleSampleGrid) {
  SampledUtilization model(TimeGrid{0, kHour, 1}, {0.42});
  EXPECT_DOUBLE_EQ(model.at(-kWeek), 0.42);
  EXPECT_DOUBLE_EQ(model.at(0), 0.42);
  EXPECT_DOUBLE_EQ(model.at(kWeek), 0.42);
}

TEST(TraceIoEdgeTest, UtilizationRowsOutsideGridIgnored) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 2, -kDay, kNoEnd,
            std::make_shared<ConstantUtilization>(0.5));
  std::ostringstream topo_out, vm_out;
  export_topology(topo, topo_out);
  export_vm_table(fx.trace, vm_out);
  std::istringstream topo_in(topo_out.str()), vm_in(vm_out.str());
  // Rows before and after the window plus one valid row.
  std::istringstream util_in(
      "vm,timestamp,avg_cpu\n0,-300,0.9\n0,999999999,0.9\n0,600,0.5\n");
  const auto imported = import_trace(topo_in, vm_in, &util_in);
  const auto& model = imported.trace->vm(VmId(0)).utilization;
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(model->at(600), 0.5);
  EXPECT_DOUBLE_EQ(model->at(kDay), 0.0);  // unfilled slots default to 0
}

TEST(AllocatorEdgeTest, NodeAvailabilityToggle) {
  const Topology topo = test::tiny_topology();
  Allocator alloc(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  EXPECT_TRUE(alloc.node_available(node));
  alloc.set_node_available(node, false);
  EXPECT_FALSE(alloc.node_available(node));
  alloc.set_node_available(node, true);
  EXPECT_TRUE(alloc.node_available(node));
  EXPECT_THROW(alloc.set_node_available(NodeId(), false), CheckError);
}

// --- Parallel analysis sites on degenerate inputs -------------------------
// The parallel fan-outs must degrade gracefully when there is (almost)
// nothing to fan out over, at serial and parallel thread counts alike.

TEST(ParallelAnalysisEdgeTest, ClassifyEmptyTrace) {
  const Topology topo = test::tiny_topology();
  TraceStore trace(&topo);
  for (const auto& cfg :
       {ParallelConfig::serial(), ParallelConfig::with_threads(8)}) {
    const auto shares =
        analysis::classify_population(AnalysisContext(trace, cfg), CloudType::kPrivate, 0, {});
    EXPECT_EQ(shares.classified, 0u);
    EXPECT_EQ(shares.diurnal + shares.stable + shares.irregular +
                  shares.hourly_peak,
              0.0);
  }
}

TEST(ParallelAnalysisEdgeTest, ClassifySingleVm) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 2, -kDay, kNoEnd,
            std::make_shared<ConstantUtilization>(0.3));
  for (const auto& cfg :
       {ParallelConfig::serial(), ParallelConfig::with_threads(8)}) {
    const auto shares =
        analysis::classify_population(AnalysisContext(fx.trace, cfg), CloudType::kPrivate, 0, {});
    EXPECT_EQ(shares.classified, 1u);
    EXPECT_EQ(shares.stable, 1.0);  // constant series => stable
  }
}

TEST(ParallelAnalysisEdgeTest, SingleNodeCorrelationSet) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  // Exactly one candidate node hosting two covering VMs; every other node
  // is empty and must be filtered out, not crash the fan-out.
  fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 2, -kDay, kNoEnd,
            std::make_shared<ConstantUtilization>(0.3));
  fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 2, -kDay, kNoEnd,
            std::make_shared<ConstantUtilization>(0.6));
  const auto serial = analysis::node_vm_correlations(AnalysisContext(fx.trace, ParallelConfig::serial()), CloudType::kPrivate, 0);
  const auto parallel = analysis::node_vm_correlations(AnalysisContext(fx.trace, ParallelConfig::with_threads(8)), CloudType::kPrivate, 0);
  EXPECT_EQ(serial.size(), 2u);  // one correlation per hosted VM
  EXPECT_EQ(serial, parallel);
  // No multi-region subscription => empty cross-region set, no throw.
  EXPECT_TRUE(analysis::cross_region_correlations(AnalysisContext(fx.trace),
                                                  CloudType::kPrivate)
                  .empty());
}

TEST(ParallelAnalysisEdgeTest, OneTickTelemetryGrid) {
  const Topology topo = test::tiny_topology();
  TraceStore trace(&topo, TimeGrid{0, kTelemetryInterval, 1});
  SubscriptionInfo info;
  info.cloud = CloudType::kPrivate;
  info.party = PartyType::kFirstParty;
  const SubscriptionId sub = trace.add_subscription(info);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  VmRecord rec;
  rec.subscription = sub;
  rec.cloud = CloudType::kPrivate;
  rec.party = PartyType::kFirstParty;
  rec.region = RegionId(0);
  const Node& n = topo.node(node);
  rec.cluster = n.cluster;
  rec.rack = n.rack;
  rec.node = node;
  rec.cores = 2;
  rec.memory_gb = 8;
  rec.created = -kHour;
  rec.deleted = kNoEnd;
  rec.utilization = std::make_shared<ConstantUtilization>(0.5);
  trace.add_vm(std::move(rec));
  for (const auto& cfg :
       {ParallelConfig::serial(), ParallelConfig::with_threads(8)}) {
    const auto shares =
        analysis::classify_population(AnalysisContext(trace, cfg), CloudType::kPrivate, 0, {});
    EXPECT_EQ(shares.classified, 1u);
    EXPECT_EQ(shares.stable, 1.0);  // a one-sample series has zero stddev
  }
}

TEST(ConstantUtilizationTest, KindTag) {
  const ConstantUtilization model(0.5);
  EXPECT_EQ(model.kind(), "unknown");  // base-class default
  EXPECT_DOUBLE_EQ(model.at(123456), 0.5);
}

}  // namespace
}  // namespace cloudlens
