#include "common/sim_time.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace cloudlens {
namespace {

TEST(SimTimeTest, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(kHour), 1);
  EXPECT_EQ(hour_of_day(23 * kHour + 59 * kMinute), 23);
  EXPECT_EQ(hour_of_day(kDay), 0);
  EXPECT_EQ(hour_of_day(kDay + 5 * kHour), 5);
}

TEST(SimTimeTest, HourOfDayNegativeTimes) {
  // One hour before epoch is 23:00 of the previous day.
  EXPECT_EQ(hour_of_day(-kHour), 23);
  EXPECT_EQ(hour_of_day(-kDay), 0);
}

TEST(SimTimeTest, FracHourOfDay) {
  EXPECT_DOUBLE_EQ(frac_hour_of_day(90 * kMinute), 1.5);
  EXPECT_DOUBLE_EQ(frac_hour_of_day(kDay + 30 * kMinute), 0.5);
}

TEST(SimTimeTest, DayOfWeekStartsMonday) {
  EXPECT_EQ(day_of_week(0), 0);                 // Monday
  EXPECT_EQ(day_of_week(4 * kDay), 4);          // Friday
  EXPECT_EQ(day_of_week(5 * kDay), 5);          // Saturday
  EXPECT_EQ(day_of_week(6 * kDay + kHour), 6);  // Sunday
  EXPECT_EQ(day_of_week(kWeek), 0);             // wraps to Monday
}

TEST(SimTimeTest, Weekend) {
  EXPECT_FALSE(is_weekend(0));
  EXPECT_FALSE(is_weekend(4 * kDay + 23 * kHour));
  EXPECT_TRUE(is_weekend(5 * kDay));
  EXPECT_TRUE(is_weekend(6 * kDay + 12 * kHour));
  EXPECT_FALSE(is_weekend(kWeek));
}

TEST(SimTimeTest, MinuteOfHour) {
  EXPECT_EQ(minute_of_hour(0), 0);
  EXPECT_EQ(minute_of_hour(35 * kMinute), 35);
  EXPECT_EQ(minute_of_hour(kHour + 5 * kMinute), 5);
}

TEST(SimTimeTest, FormatSimTime) {
  EXPECT_EQ(format_sim_time(0), "Mon 00:00");
  EXPECT_EQ(format_sim_time(kDay + 14 * kHour + 35 * kMinute), "Tue 14:35");
  EXPECT_EQ(format_sim_time(kWeek + kDay), "w1 Tue 00:00");
}

TEST(TimeGridTest, AtAndIndexRoundTrip) {
  const TimeGrid grid{0, kTelemetryInterval, 100};
  for (std::size_t i = 0; i < grid.count; i += 7) {
    EXPECT_EQ(grid.index_of(grid.at(i)), i);
  }
}

TEST(TimeGridTest, IndexOfMidSlot) {
  const TimeGrid grid{0, kHour, 24};
  EXPECT_EQ(grid.index_of(kHour + 30 * kMinute), 1u);
  EXPECT_EQ(grid.index_of(0), 0u);
}

TEST(TimeGridTest, ContainsAndEnd) {
  const TimeGrid grid{kHour, kHour, 10};
  EXPECT_EQ(grid.end(), 11 * kHour);
  EXPECT_FALSE(grid.contains(kHour - 1));
  EXPECT_TRUE(grid.contains(kHour));
  EXPECT_TRUE(grid.contains(11 * kHour - 1));
  EXPECT_FALSE(grid.contains(11 * kHour));
}

TEST(TimeGridTest, OutOfRangeIndexThrows) {
  const TimeGrid grid{0, kHour, 10};
  EXPECT_THROW(grid.index_of(-1), CheckError);
  EXPECT_THROW(grid.index_of(10 * kHour), CheckError);
  EXPECT_THROW(grid.at(10), CheckError);
}

TEST(TimeGridTest, CanonicalGrids) {
  EXPECT_EQ(week_telemetry_grid().count, 2016u);
  EXPECT_EQ(week_hourly_grid().count, 168u);
  EXPECT_EQ(week_telemetry_grid().points_per_hour(), 12u);
}

}  // namespace
}  // namespace cloudlens
