// Differential harness for the SIMD kernel tier: every variant (tier ×
// mode) of every kernel family is checked against the scalar reference
// oracle over random spans and adversarial edge shapes — empty, length
// one, lengths straddling the 2- and 4-wide lane boundaries, NaN/Inf
// payloads, and denormals.
//
// The contract being enforced (see stats/kernels/dispatch.h):
//   * fft_stage, band_percentiles, hash_normal_fill: bit-identical to
//     the oracle at every tier in BOTH modes.
//   * pearson_sums: bit-identical in strict mode (any tier); fast mode
//     may reassociate, so sums are compared with a tight tolerance and
//     the finished correlation must agree to |Δr| <= 1e-9.
//
// NaN payloads may legitimately differ between variants (x86 min/add
// NaN selection depends on operand order, and lanes swap operands), so
// byte comparisons treat "both NaN" as equal.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/descriptive.h"
#include "stats/kernels/kernels.h"
#include "stats/kernels/kernels_impl.h"

namespace cloudlens::stats::kernels {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenormal = std::numeric_limits<double>::denorm_min();

/// Every (tier, mode) pair this machine can execute. Unsupported tiers
/// are omitted here; kernel_dispatch_test covers skip messaging.
std::vector<Config> runnable_configs() {
  std::vector<Config> configs;
  for (const Tier tier : {Tier::kScalar, Tier::kSse2, Tier::kAvx2}) {
    if (!tier_supported(tier)) continue;
    configs.push_back({tier, Mode::kStrict});
    configs.push_back({tier, Mode::kFast});
  }
  return configs;
}

std::string label(Config c) {
  return std::string(to_string(c.tier)) + "/" + std::string(to_string(c.mode));
}

/// Bitwise equality, except any-NaN-vs-any-NaN counts as equal.
::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return ::testing::AssertionSuccess();
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof a);
  std::memcpy(&bb, &b, sizeof b);
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << ba << ") != " << b << " (0x" << bb
         << ")";
}

/// Value equality with a combined absolute + relative tolerance; exact
/// for infinities of the same sign; both-NaN counts as equal. The
/// absolute floor absorbs denormal-range reassociation differences.
::testing::AssertionResult CloseEnough(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return ::testing::AssertionSuccess();
  if (a == b) return ::testing::AssertionSuccess();  // covers same-sign inf
  const double tol =
      1e-300 + 1e-12 * std::max(std::fabs(a), std::fabs(b));
  if (std::fabs(a - b) <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (|delta| = " << std::fabs(a - b) << ")";
}

/// Deterministic pseudo-random series in [0, 1), like telemetry rows.
std::vector<double> random_series(std::uint64_t seed, std::size_t n) {
  SplitMix64 sm(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return out;
}

/// Lengths chosen to straddle every lane boundary: empty, one, below /
/// at / above 2- and 4-wide multiples, and a full telemetry week (2016).
const std::size_t kEdgeLengths[] = {0,  1,  2,  3,  4,  5,   7,   8,
                                    9,  15, 16, 17, 31, 33,  64,  100,
                                    2016};

// --- Family 1: pearson_sums ---------------------------------------------

void check_pearson(Config config, std::span<const double> x,
                   std::span<const double> y, bool finite_data) {
  const PearsonSums oracle = detail::pearson_sums_scalar(x.data(), y.data(),
                                                         x.size());
  const PearsonSums got = pearson_sums_with(config, x, y);
  if (config.mode == Mode::kStrict) {
    EXPECT_TRUE(BitsEqual(got.sx, oracle.sx)) << label(config);
    EXPECT_TRUE(BitsEqual(got.sy, oracle.sy)) << label(config);
    EXPECT_TRUE(BitsEqual(got.sxx, oracle.sxx)) << label(config);
    EXPECT_TRUE(BitsEqual(got.syy, oracle.syy)) << label(config);
    EXPECT_TRUE(BitsEqual(got.sxy, oracle.sxy)) << label(config);
    return;
  }
  EXPECT_TRUE(CloseEnough(got.sx, oracle.sx)) << label(config);
  EXPECT_TRUE(CloseEnough(got.sy, oracle.sy)) << label(config);
  EXPECT_TRUE(CloseEnough(got.sxx, oracle.sxx)) << label(config);
  EXPECT_TRUE(CloseEnough(got.syy, oracle.syy)) << label(config);
  EXPECT_TRUE(CloseEnough(got.sxy, oracle.sxy)) << label(config);
  if (!finite_data || x.size() < 2) return;
  // The documented fast-mode tolerance on the finished correlation.
  const auto finish = [n = x.size()](const PearsonSums& s) {
    const double dn = static_cast<double>(n);
    const double cxx = s.sxx - s.sx * s.sx / dn;
    const double cyy = s.syy - s.sy * s.sy / dn;
    const double cxy = s.sxy - s.sx * s.sy / dn;
    if (cxx <= 0.0 || cyy <= 0.0) return 0.0;
    return cxy / std::sqrt(cxx * cyy);
  };
  EXPECT_NEAR(finish(got), finish(oracle), 1e-9) << label(config);
}

TEST(KernelDifferential, PearsonRandomSpans) {
  for (const std::size_t n : kEdgeLengths) {
    const auto x = random_series(0x9E3779B9 + n, n);
    const auto y = random_series(0xC0FFEE00 + n, n);
    for (const Config config : runnable_configs()) {
      SCOPED_TRACE("n=" + std::to_string(n));
      check_pearson(config, x, y, /*finite_data=*/true);
    }
  }
}

TEST(KernelDifferential, PearsonCorrelatedAndConstant) {
  const std::size_t n = 2016;
  const auto x = random_series(1, n);
  std::vector<double> y(n), constant(n, 0.25);
  for (std::size_t i = 0; i < n; ++i) y[i] = 0.75 * x[i] + 0.1;
  for (const Config config : runnable_configs()) {
    check_pearson(config, x, y, true);
    check_pearson(config, x, constant, true);
    check_pearson(config, constant, constant, true);
  }
}

TEST(KernelDifferential, PearsonSpecialValues) {
  for (const std::size_t n : {3ul, 5ul, 9ul, 33ul}) {
    auto x = random_series(7 + n, n);
    auto y = random_series(11 + n, n);
    x[0] = kNaN;
    y[n / 2] = kInf;
    if (n > 4) x[n - 1] = -kInf;
    for (const Config config : runnable_configs()) {
      SCOPED_TRACE("n=" + std::to_string(n));
      check_pearson(config, x, y, /*finite_data=*/false);
    }
  }
}

TEST(KernelDifferential, PearsonDenormals) {
  for (const std::size_t n : {2ul, 6ul, 17ul}) {
    std::vector<double> x(n, kDenormal), y(n);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = (i % 2 != 0 ? -1.0 : 1.0) * kDenormal * double(i + 1);
    for (const Config config : runnable_configs())
      check_pearson(config, x, y, true);
  }
}

// --- Family 3: fft_stage -------------------------------------------------

/// Runs the full stage sweep (len = 2, 4, ..., n) the way fft_inplace
/// does, comparing the buffer against the oracle's after every stage.
void check_fft_sweep(std::vector<double> data) {
  const std::size_t n = data.size() / 2;
  ASSERT_TRUE(n > 0 && (n & (n - 1)) == 0);
  for (const Config config : runnable_configs()) {
    std::vector<double> mine = data;
    std::vector<double> reference = data;
    for (std::size_t len = 2; len <= n; len <<= 1) {
      // The same twiddle recurrence fft_inplace uses.
      const std::size_t half = len / 2;
      std::vector<double> twiddle(2 * half);
      const double angle = -2.0 * 3.141592653589793238462643 /
                           static_cast<double>(len);
      double wr = 1.0, wi = 0.0;
      const double wr0 = std::cos(angle), wi0 = std::sin(angle);
      for (std::size_t k = 0; k < half; ++k) {
        twiddle[2 * k] = wr;
        twiddle[2 * k + 1] = wi;
        const double next_wr = wr * wr0 - wi * wi0;
        wi = wr * wi0 + wi * wr0;
        wr = next_wr;
      }
      fft_stage_with(config, mine.data(), n, len, twiddle.data());
      detail::fft_stage_scalar(reference.data(), n, len, twiddle.data());
      for (std::size_t i = 0; i < mine.size(); ++i) {
        ASSERT_TRUE(BitsEqual(mine[i], reference[i]))
            << label(config) << " len=" << len << " i=" << i;
      }
    }
  }
}

TEST(KernelDifferential, FftStageBitExactRandom) {
  for (const std::size_t n : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul, 256ul, 4096ul}) {
    auto data = random_series(0xFF7 + n, 2 * n);
    for (auto& v : data) v = 2.0 * v - 1.0;
    check_fft_sweep(std::move(data));
  }
}

TEST(KernelDifferential, FftStageSpecialValues) {
  auto data = random_series(0xF00, 2 * 64);
  data[3] = kNaN;
  data[17] = kInf;
  data[40] = -kInf;
  data[77] = kDenormal;
  check_fft_sweep(std::move(data));
}

// --- Family 2: band_percentiles -----------------------------------------

void check_bands(std::uint64_t seed, std::size_t nrows, std::size_t cols) {
  std::vector<std::vector<double>> matrix(nrows);
  std::vector<const double*> rows(nrows);
  for (std::size_t r = 0; r < nrows; ++r) {
    matrix[r] = random_series(seed + r, cols);
    if (cols > 2 && r == 0) matrix[r][cols / 2] = kDenormal;
    rows[r] = matrix[r].data();
  }

  // Independent reference: per-column gather + sort + quantiles, exactly
  // the pre-kernel percentile_bands loop.
  std::vector<double> e25(cols), e50(cols), e75(cols), e95(cols);
  std::vector<double> column(nrows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < nrows; ++r) column[r] = matrix[r][c];
    std::sort(column.begin(), column.end());
    e25[c] = quantile_sorted(column, 0.25);
    e50[c] = quantile_sorted(column, 0.50);
    e75[c] = quantile_sorted(column, 0.75);
    e95[c] = quantile_sorted(column, 0.95);
  }

  for (const Config config : runnable_configs()) {
    std::vector<double> p25(cols), p50(cols), p75(cols), p95(cols);
    band_percentiles_with(config, rows, cols,
                          BandOutputs{p25, p50, p75, p95});
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_TRUE(BitsEqual(p25[c], e25[c]))
          << label(config) << " nrows=" << nrows << " c=" << c;
      ASSERT_TRUE(BitsEqual(p50[c], e50[c])) << label(config) << " c=" << c;
      ASSERT_TRUE(BitsEqual(p75[c], e75[c])) << label(config) << " c=" << c;
      ASSERT_TRUE(BitsEqual(p95[c], e95[c])) << label(config) << " c=" << c;
    }
  }
}

TEST(KernelDifferential, BandPercentilesBitExact) {
  for (const std::size_t nrows : {1ul, 2ul, 3ul, 5ul, 8ul, 17ul}) {
    for (const std::size_t cols : {1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 129ul}) {
      check_bands(nrows * 1000 + cols, nrows, cols);
    }
  }
  check_bands(42, 100, 2016);  // a realistic population × week
}

TEST(KernelDifferential, BandPercentilesZeroColumns) {
  std::vector<double> row{0.5};
  std::vector<const double*> rows{row.data()};
  for (const Config config : runnable_configs()) {
    band_percentiles_with(config, rows, 0, BandOutputs{{}, {}, {}, {}});
  }
}

// --- Family 4: hash_normal_fill -----------------------------------------

TEST(KernelDifferential, HashNormalFillBitExact) {
  const std::uint64_t seeds[] = {0, 1, 42, 0xDEADBEEFCAFEULL};
  for (const std::uint64_t seed : seeds) {
    for (const std::size_t n : kEdgeLengths) {
      std::vector<std::int64_t> keys(n);
      SplitMix64 sm(seed + n);
      for (std::size_t i = 0; i < n; ++i)
        keys[i] = static_cast<std::int64_t>(sm.next());  // full i64 range
      std::vector<double> expected(n), got(n);
      detail::hash_normal_fill_scalar(seed, keys.data(), n, expected.data());
      // The scalar fill must itself agree with the per-element oracle.
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_TRUE(BitsEqual(expected[i], hash_normal_one(seed, keys[i])));
      for (const Config config : runnable_configs()) {
        std::fill(got.begin(), got.end(), kNaN);
        hash_normal_fill_with(config, seed, keys, got);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(BitsEqual(got[i], expected[i]))
              << label(config) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelDifferential, HashNormalFillExtremeKeys) {
  const std::vector<std::int64_t> keys = {
      0,  1,  -1, std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
      6048,  // a telemetry-week tick key
      -6048};
  std::vector<double> expected(keys.size()), got(keys.size());
  detail::hash_normal_fill_scalar(99, keys.data(), keys.size(),
                                  expected.data());
  for (const Config config : runnable_configs()) {
    hash_normal_fill_with(config, 99, keys, got);
    for (std::size_t i = 0; i < keys.size(); ++i)
      ASSERT_TRUE(BitsEqual(got[i], expected[i])) << label(config) << i;
  }
}

}  // namespace
}  // namespace cloudlens::stats::kernels
