#include "stats/boxplot.h"

#include <gtest/gtest.h>

#include <vector>

namespace cloudlens::stats {
namespace {

TEST(BoxStatsTest, EmptySample) {
  const BoxStats b = box_stats(std::vector<double>{});
  EXPECT_EQ(b.count, 0u);
}

TEST(BoxStatsTest, QuartilesOfUniformRamp) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(i);
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.median, 51);
  EXPECT_DOUBLE_EQ(b.q1, 26);
  EXPECT_DOUBLE_EQ(b.q3, 76);
  // No outliers in a uniform ramp; whiskers hit the extremes.
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 101);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxStatsTest, OutliersBeyondFences) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const BoxStats b = box_stats(xs);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100);
  EXPECT_LT(b.whisker_hi, 100);
}

TEST(BoxStatsTest, WhiskersWithinFences) {
  std::vector<double> xs = {0, 10, 11, 12, 13, 14, 15, 16, 30};
  const BoxStats b = box_stats(xs);
  const double iqr = b.q3 - b.q1;
  EXPECT_GE(b.whisker_lo, b.q1 - 1.5 * iqr);
  EXPECT_LE(b.whisker_hi, b.q3 + 1.5 * iqr);
  // Whiskers are actual data points.
  EXPECT_TRUE(std::find(xs.begin(), xs.end(), b.whisker_lo) != xs.end());
  EXPECT_TRUE(std::find(xs.begin(), xs.end(), b.whisker_hi) != xs.end());
}

TEST(BoxStatsTest, ConstantSample) {
  const BoxStats b = box_stats(std::vector<double>{5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(b.median, 5);
  EXPECT_DOUBLE_EQ(b.q1, 5);
  EXPECT_DOUBLE_EQ(b.q3, 5);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 5);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 5);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxStatsTest, SingleElement) {
  const BoxStats b = box_stats(std::vector<double>{42});
  EXPECT_EQ(b.count, 1u);
  EXPECT_DOUBLE_EQ(b.median, 42);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 42);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 42);
}

TEST(BoxStatsTest, UnsortedInputHandled) {
  const BoxStats a = box_stats(std::vector<double>{3, 1, 2, 5, 4});
  const BoxStats b = box_stats(std::vector<double>{1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.q1, b.q1);
  EXPECT_DOUBLE_EQ(a.q3, b.q3);
}

}  // namespace
}  // namespace cloudlens::stats
