#include "analysis/context.h"
#include "analysis/temporal.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "testutil.h"

namespace cloudlens::analysis {
namespace {

class TemporalTest : public ::testing::Test {
 protected:
  TemporalTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
  NodeId node_{test::first_node(topo_, CloudType::kPublic)};
};

TEST_F(TemporalTest, LifetimesOnlyCountInWindowVms) {
  // In-window: created >= 0 and deleted <= week.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, kHour, 3 * kHour);
  // Started before the window: excluded.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, -kHour, 2 * kHour);
  // Ends after the window: excluded.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, kDay,
             kWeek + kHour);
  // Never ends: excluded.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, kDay, kNoEnd);

  const auto lifetimes = vm_lifetimes(AnalysisContext(fx_.trace), CloudType::kPublic);
  ASSERT_EQ(lifetimes.size(), 1u);
  EXPECT_DOUBLE_EQ(lifetimes[0], double(2 * kHour));
}

TEST_F(TemporalTest, ShortestBinShare) {
  const std::vector<double> lifetimes = {
      double(10 * kMinute), double(20 * kMinute), double(2 * kHour),
      double(kDay)};
  EXPECT_DOUBLE_EQ(shortest_bin_share(lifetimes), 0.5);
  EXPECT_DOUBLE_EQ(shortest_bin_share({}), 0.0);
  EXPECT_DOUBLE_EQ(shortest_bin_share(lifetimes, double(kMinute)), 0.0);
}

TEST_F(TemporalTest, VmCountSweepMatchesBruteForce) {
  // Three VMs with varied overlaps.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, -kDay, 2 * kHour);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, kHour, 5 * kHour);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 3 * kHour, kNoEnd);

  const TimeGrid grid{0, kHour, 8};
  const auto series =
      vm_count_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(0), grid);
  for (std::size_t i = 0; i < grid.count; ++i) {
    int expected = 0;
    for (const auto& vm : fx_.trace.vms()) {
      if (vm.alive_at(grid.at(i))) ++expected;
    }
    EXPECT_DOUBLE_EQ(series[i], double(expected)) << "hour " << i;
  }
}

TEST_F(TemporalTest, VmCountAggregatesAllRegionsWhenInvalid) {
  const auto clusters1 = topo_.clusters_in(RegionId(1), CloudType::kPublic);
  const NodeId node1 = topo_.cluster(clusters1[0]).nodes.front();
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 0, kNoEnd);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node1, 1, 0, kNoEnd, nullptr,
             RegionId(1));
  const TimeGrid grid{0, kHour, 2};
  EXPECT_DOUBLE_EQ(
      vm_count_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(), grid)[1],
      2.0);
  EXPECT_DOUBLE_EQ(
      vm_count_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(0), grid)[1],
      1.0);
}

TEST_F(TemporalTest, CreationsPerHourBins) {
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 30 * kMinute,
             kNoEnd);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 45 * kMinute,
             kNoEnd);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 2 * kHour, kNoEnd);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, -kHour, kNoEnd);

  const TimeGrid grid{0, kHour, 4};
  const auto series =
      creations_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(0), grid);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[1], 0.0);
  EXPECT_DOUBLE_EQ(series[2], 1.0);  // pre-window creation not binned
}

TEST_F(TemporalTest, RemovalsPerHourBins) {
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 0, kHour + 1);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, 0, kNoEnd);
  const TimeGrid grid{0, kHour, 4};
  const auto series =
      removals_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(0), grid);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);
}

TEST_F(TemporalTest, CreationCvSkipsEmptyRegions) {
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1, kHour, kNoEnd);
  const auto cvs = creation_cv_by_region(AnalysisContext(fx_.trace), CloudType::kPublic);
  // Only region 0 has creations.
  ASSERT_EQ(cvs.size(), 1u);
}

TEST_F(TemporalTest, BurstyRegionHasHigherCv) {
  // Region 0: one creation per hour (smooth). Region 1: all in one hour.
  const auto clusters1 = topo_.clusters_in(RegionId(1), CloudType::kPublic);
  const NodeId node1 = topo_.cluster(clusters1[0]).nodes.front();
  for (int h = 0; h < 24; ++h) {
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 1,
               h * kHour + kMinute, kNoEnd);
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node1, 1,
               5 * kHour + h * kMinute, kNoEnd, nullptr, RegionId(1));
  }
  const TimeGrid grid{0, kHour, 24};
  const auto smooth =
      creations_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(0), grid);
  const auto bursty =
      creations_per_hour(AnalysisContext(fx_.trace), CloudType::kPublic, RegionId(1), grid);
  EXPECT_GT(stats::coefficient_of_variation(bursty.values()),
            5 * stats::coefficient_of_variation(smooth.values()));
}

}  // namespace
}  // namespace cloudlens::analysis
