#include "analysis/context.h"
#include "analysis/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/generator.h"

namespace cloudlens::analysis {
namespace {

TEST(ReportTest, ContainsEverySectionAndVerdict) {
  workloads::ScenarioOptions options;
  options.scale = 0.08;
  options.seed = 3;
  const auto scenario = workloads::make_scenario(options);

  std::ostringstream out;
  ReportOptions report_options;
  report_options.title = "Test report";
  const auto verdicts = write_characterization_report(AnalysisContext(*scenario.trace), out,
                                                      report_options);
  const std::string md = out.str();

  EXPECT_NE(md.find("# Test report"), std::string::npos);
  EXPECT_NE(md.find("## Summary of insight verdicts"), std::string::npos);
  EXPECT_NE(md.find("## Deployment characteristics"), std::string::npos);
  EXPECT_NE(md.find("## Temporal behaviour"), std::string::npos);
  EXPECT_NE(md.find("## Utilization patterns"), std::string::npos);
  EXPECT_NE(md.find("## Spatial similarity"), std::string::npos);
  EXPECT_NE(md.find("median VMs per subscription"), std::string::npos);
  EXPECT_NE(md.find("hourly-peak"), std::string::npos);

  // The returned verdicts match a direct evaluation.
  const auto direct = evaluate_insights(AnalysisContext(*scenario.trace));
  EXPECT_EQ(verdicts.insight1, direct.insight1);
  EXPECT_EQ(verdicts.insight2, direct.insight2);
  EXPECT_NEAR(verdicts.median_creation_cv.private_value,
              direct.median_creation_cv.private_value, 1e-9);
}

TEST(ReportTest, MarkdownTablesWellFormed) {
  workloads::ScenarioOptions options;
  options.scale = 0.06;
  const auto scenario = workloads::make_scenario(options);
  std::ostringstream out;
  write_characterization_report(AnalysisContext(*scenario.trace), out);
  // Every table row has a matching number of pipes on the header rows.
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| metric", 0) == 0) {
      std::string sep;
      ASSERT_TRUE(std::getline(lines, sep));
      EXPECT_EQ(std::count(line.begin(), line.end(), '|'),
                std::count(sep.begin(), sep.end(), '|'));
    }
  }
}

}  // namespace
}  // namespace cloudlens::analysis
