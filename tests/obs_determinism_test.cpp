// Observability determinism suite: the obs layer's two contracts, pinned.
//
//  1. *Write-only side channel.* Enabling metrics and/or tracing — at any
//     thread count, for any seed — never changes a single output bit of
//     generation or analysis (ObsDeterminismTest).
//  2. *Exact accounting.* Counters are exact under concurrency, histogram
//     snapshots are invariant to how samples were spread over threads, and
//     the span JSON is well-formed Chrome Trace Event output with
//     physically consistent nesting (ObsMetricsTest / ObsSpanTest).
//
// ObsContextTest covers the AnalysisContext API itself: legacy forwarding
// overloads produce identical results, private registries isolate counts,
// and — the historical ParallelConfig-routing bug — the characterization
// report is byte-identical at 1 and 8 threads.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "analysis/classifier.h"
#include "analysis/context.h"
#include "analysis/report.h"
#include "analysis/spatial.h"
#include "analysis/temporal.h"
#include "analysis/utilization.h"
#include "cloudsim/trace_io.h"
#include "kb/extractor.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "obs/trace_sink.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, bools/null) used
// to *parse* — not merely grep — the emitted documents.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& obj() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& arr() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses one value; sets ok=false on any syntax error or trailing junk.
  JsonValue parse(bool& ok) {
    ok = true;
    JsonValue v = value(ok);
    skip_ws();
    if (pos_ != text_.size()) ok = false;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  JsonValue value(bool& ok) {
    skip_ws();
    switch (peek()) {
      case '{':
        return object(ok);
      case '[':
        return array(ok);
      case '"':
        return string(ok);
      case 't':
      case 'f':
        return boolean(ok);
      case 'n':
        return null(ok);
      default:
        return number(ok);
    }
  }

  JsonValue object(bool& ok) {
    JsonValue out;
    auto obj = std::make_shared<JsonObject>();
    out.v = obj;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (ok) {
      skip_ws();
      if (peek() != '"') {
        ok = false;
        return out;
      }
      const JsonValue key = string(ok);
      skip_ws();
      if (peek() != ':') {
        ok = false;
        return out;
      }
      ++pos_;
      (*obj)[key.str()] = value(ok);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return out;
      }
      ok = false;
    }
    return out;
  }

  JsonValue array(bool& ok) {
    JsonValue out;
    auto arr = std::make_shared<JsonArray>();
    out.v = arr;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (ok) {
      arr->push_back(value(ok));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return out;
      }
      ok = false;
    }
    return out;
  }

  JsonValue string(bool& ok) {
    JsonValue out;
    std::string s;
    ++pos_;  // '"'
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        switch (text_[pos_]) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          default: s += text_[pos_];
        }
      } else {
        s += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      ok = false;
      return out;
    }
    ++pos_;  // closing '"'
    out.v = std::move(s);
    return out;
  }

  JsonValue number(bool& ok) {
    JsonValue out;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) {
      ok = false;
      return out;
    }
    out.v = std::stod(text_.substr(start, pos_ - start));
    return out;
  }

  JsonValue boolean(bool& ok) {
    JsonValue out;
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.v = true;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.v = false;
    } else {
      ok = false;
    }
    return out;
  }

  JsonValue null(bool& ok) {
    JsonValue out;
    if (text_.compare(pos_, 4, "null") == 0)
      pos_ += 4;
    else
      ok = false;
    return out;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Shared fixtures.

workloads::Scenario small_scenario(std::uint64_t seed,
                                   std::size_t threads = 1) {
  workloads::ScenarioOptions options;
  options.seed = seed;
  options.scale = 0.05;
  options.parallel = ParallelConfig::with_threads(threads);
  return workloads::make_scenario(options);
}

/// A value checksum over the analysis passes the obs layer instruments.
double analysis_checksum(const AnalysisContext& ctx) {
  double acc = 0;
  for (const CloudType cloud : {CloudType::kPrivate, CloudType::kPublic}) {
    const auto shares = analysis::classify_population(ctx, cloud, 200);
    acc += shares.diurnal + 2 * shares.stable + 3 * shares.irregular +
           5 * shares.hourly_peak;
  }
  for (const double r :
       analysis::node_vm_correlations(ctx, CloudType::kPrivate, 60))
    acc += r;
  const auto dist =
      analysis::utilization_distribution(ctx, CloudType::kPublic, 150);
  for (const double v : dist.weekly.p95) acc += v;
  for (const double l : analysis::vm_lifetimes(ctx, CloudType::kPublic))
    acc += l * 1e-7;
  const auto records = kb::extract_all(ctx);
  for (const auto& rec : records) acc += rec.mean_utilization;
  return acc;
}

// ---------------------------------------------------------------------------
// 1. Write-only side channel: obs on/off x thread count x seed.

TEST(ObsDeterminismTest, AnalysisBitIdenticalWithObsOnAndOff) {
  for (const std::uint64_t seed : {11ull, 4242ull}) {
    const auto scenario = small_scenario(seed);
    const TraceStore& trace = *scenario.trace;

    std::vector<double> checksums;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      for (const bool obs_on : {false, true}) {
        obs::MetricsRegistry registry;
        obs::TraceSink sink;
        registry.set_enabled(obs_on);
        sink.set_enabled(obs_on);
        const AnalysisContext ctx(trace,
                                  ParallelConfig::with_threads(threads),
                                  &registry, &sink);
        checksums.push_back(analysis_checksum(ctx));
        if (obs_on) {
          // Sanity: the instrumented run actually recorded something.
          const auto snap = registry.snapshot();
          EXPECT_GT(snap.counter("analysis.passes"), 0u) << "seed " << seed;
          EXPECT_GT(sink.event_count(), 0u) << "seed " << seed;
        }
      }
    }
    for (std::size_t i = 1; i < checksums.size(); ++i) {
      EXPECT_EQ(checksums[0], checksums[i])
          << "seed " << seed << " combo " << i;
    }
  }
}

TEST(ObsDeterminismTest, GenerationBitIdenticalWithGlobalObsEnabled) {
  auto render = [](const workloads::Scenario& s) {
    std::ostringstream out;
    export_vm_table(*s.trace, out);
    return out.str();
  };
  const std::string baseline = render(small_scenario(99, 4));

  auto& registry = obs::MetricsRegistry::global();
  auto& sink = obs::TraceSink::global();
  registry.set_enabled(true);
  sink.set_enabled(true);
  const std::string instrumented = render(small_scenario(99, 4));
  registry.set_enabled(false);
  sink.set_enabled(false);
  registry.reset();
  sink.reset();

  EXPECT_EQ(baseline, instrumented);
}

// ---------------------------------------------------------------------------
// 2. Exact accounting.

TEST(ObsMetricsTest, CountersExactUnderConcurrency) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        registry.add(obs::Counter::kSimEvents);
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("sim.events"), kThreads * kPerThread);
}

TEST(ObsMetricsTest, HistogramSnapshotInvariantToThreadSpread) {
  // The same multiset of samples, recorded serially vs spread over eight
  // threads, must merge to the identical snapshot: integer bucket counts
  // and an exact integer nanosecond sum commute.
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i)
    samples.push_back(1e-6 * static_cast<double>((i * 37) % 50000));

  obs::MetricsRegistry serial;
  serial.set_enabled(true);
  for (const double s : samples)
    serial.observe_seconds(obs::Histogram::kAnalysisPassSeconds, s);

  obs::MetricsRegistry threaded;
  threaded.set_enabled(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&threaded, &samples, t] {
      for (std::size_t i = t; i < samples.size(); i += kThreads)
        threaded.observe_seconds(obs::Histogram::kAnalysisPassSeconds,
                                 samples[i]);
    });
  }
  for (auto& w : workers) w.join();

  const auto a = serial.snapshot();
  const auto b = threaded.snapshot();
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t h = 0; h < a.histograms.size(); ++h) {
    EXPECT_EQ(a.histograms[h].count, b.histograms[h].count);
    EXPECT_EQ(a.histograms[h].sum_ns, b.histograms[h].sum_ns);
    EXPECT_EQ(a.histograms[h].buckets, b.histograms[h].buckets);
  }
}

TEST(ObsMetricsTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry registry;  // starts disabled
  registry.add(obs::Counter::kSimEvents, 5);
  registry.set(obs::Gauge::kPanelBytes, 123.0);
  registry.observe_seconds(obs::Histogram::kSimRunSeconds, 0.25);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("sim.events"), 0u);
  for (const auto& [name, value] : snap.gauges) EXPECT_EQ(value, 0.0);
  for (const auto& h : snap.histograms) EXPECT_EQ(h.count, 0u);
}

TEST(ObsMetricsTest, JsonSnapshotParsesAndMatchesCounts) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  registry.add(obs::Counter::kAllocAttempts, 7);
  registry.set(obs::Gauge::kPanelVms, 42.0);
  registry.observe_seconds(obs::Histogram::kPanelBuildSeconds, 0.001);
  registry.observe_seconds(obs::Histogram::kPanelBuildSeconds, 0.002);

  std::ostringstream out;
  registry.write_json(out);
  const std::string text = out.str();
  bool ok = false;
  const JsonValue doc = JsonParser(text).parse(ok);
  ASSERT_TRUE(ok) << text;
  ASSERT_TRUE(doc.is_object());
  const auto& counters = doc.obj().at("counters");
  ASSERT_TRUE(counters.is_object());
  EXPECT_EQ(counters.obj().at("alloc.attempts").num(), 7.0);
  EXPECT_EQ(doc.obj().at("gauges").obj().at("panel.vms").num(), 42.0);
  const auto& hist =
      doc.obj().at("histograms").obj().at("panel.build_seconds");
  EXPECT_EQ(hist.obj().at("count").num(), 2.0);
}

// ---------------------------------------------------------------------------
// 3. Span JSON: Chrome Trace Event format + nesting.

TEST(ObsSpanTest, JsonValidatesAgainstChromeTraceEventFormat) {
  obs::TraceSink sink;
  sink.set_enabled(true);
  {
    obs::Span outer("outer", &sink, "test");
    {
      obs::Span inner("inner", &sink, "test");
      // Make durations comfortably nonzero relative to the 3-decimal
      // microsecond rendering.
      volatile double spin = 0;
      for (int i = 0; i < 50000; ++i) spin = spin + 1.0;
    }
  }
  std::thread([&sink] { obs::Span other("other-thread", &sink); }).join();
  ASSERT_EQ(sink.event_count(), 3u);

  std::ostringstream out;
  sink.write_json(out);
  bool ok = false;
  const JsonValue doc = JsonParser(out.str()).parse(ok);
  ASSERT_TRUE(ok) << out.str();
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.obj().count("traceEvents"));
  const auto& events = doc.obj().at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.arr().size(), 3u);
  for (const auto& ev : events.arr()) {
    ASSERT_TRUE(ev.is_object());
    const auto& e = ev.obj();
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("cat").is_string());
    EXPECT_EQ(e.at("ph").str(), "X");  // complete events only
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("dur").num(), 0.0);
    EXPECT_EQ(e.at("pid").num(), 1.0);
    EXPECT_TRUE(e.at("tid").is_number());
  }
}

TEST(ObsSpanTest, SameThreadSpansNestPhysically) {
  obs::TraceSink sink;
  sink.set_enabled(true);
  {
    obs::Span outer("outer", &sink);
    obs::Span inner("inner", &sink);
    volatile double spin = 0;
    for (int i = 0; i < 50000; ++i) spin = spin + 1.0;
  }
  std::ostringstream out;
  sink.write_json(out);
  bool ok = false;
  const JsonValue doc = JsonParser(out.str()).parse(ok);
  ASSERT_TRUE(ok);
  const JsonObject *outer_ev = nullptr, *inner_ev = nullptr;
  for (const auto& ev : doc.obj().at("traceEvents").arr()) {
    if (ev.obj().at("name").str() == "outer") outer_ev = &ev.obj();
    if (ev.obj().at("name").str() == "inner") inner_ev = &ev.obj();
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_EQ(outer_ev->at("tid").num(), inner_ev->at("tid").num());
  // inner's interval lies within outer's (3-decimal rendering tolerance).
  const double tol = 0.002;
  EXPECT_GE(inner_ev->at("ts").num() + tol, outer_ev->at("ts").num());
  EXPECT_LE(inner_ev->at("ts").num() + inner_ev->at("dur").num(),
            outer_ev->at("ts").num() + outer_ev->at("dur").num() + tol);
}

TEST(ObsSpanTest, DisabledSinkCostsNothingAndRecordsNothing) {
  obs::TraceSink sink;  // starts disabled
  {
    obs::Span span("never", &sink);
    EXPECT_EQ(span.seconds_elapsed(), 0.0);  // no clock was read
  }
  EXPECT_EQ(sink.event_count(), 0u);
}

// ---------------------------------------------------------------------------
// 4. AnalysisContext API.

TEST(ObsContextTest, ContextResultsIndependentOfObsAndThreads) {
  // Attaching a metrics registry + span sink, or changing the thread
  // count, must never change a single output bit — observability is
  // write-only and the parallel engine is deterministic.
  const auto scenario = small_scenario(7);
  const TraceStore& trace = *scenario.trace;
  obs::MetricsRegistry metrics;
  obs::TraceSink sink;
  metrics.set_enabled(true);
  sink.set_enabled(true);
  const AnalysisContext instrumented(trace, ParallelConfig::with_threads(4),
                                     &metrics, &sink);
  const AnalysisContext bare(trace, ParallelConfig::serial());

  const auto a = analysis::classify_population(instrumented,
                                               CloudType::kPublic, 150);
  const auto b = analysis::classify_population(bare, CloudType::kPublic, 150);
  EXPECT_EQ(a.diurnal, b.diurnal);
  EXPECT_EQ(a.stable, b.stable);
  EXPECT_EQ(a.irregular, b.irregular);
  EXPECT_EQ(a.hourly_peak, b.hourly_peak);
  EXPECT_EQ(a.classified, b.classified);

  EXPECT_EQ(analysis::vm_lifetimes(instrumented, CloudType::kPrivate),
            analysis::vm_lifetimes(bare, CloudType::kPrivate));
  EXPECT_EQ(
      analysis::node_vm_correlations(instrumented, CloudType::kPrivate, 40),
      analysis::node_vm_correlations(bare, CloudType::kPrivate, 40));

  const auto kb_obs = kb::extract_all(instrumented);
  const auto kb_bare = kb::extract_all(bare);
  ASSERT_EQ(kb_obs.size(), kb_bare.size());
  for (std::size_t i = 0; i < kb_obs.size(); ++i) {
    EXPECT_EQ(kb_obs[i].subscription, kb_bare[i].subscription);
    EXPECT_EQ(kb_obs[i].mean_utilization, kb_bare[i].mean_utilization);
    EXPECT_EQ(kb_obs[i].p95_utilization, kb_bare[i].p95_utilization);
  }
}

TEST(ObsContextTest, PrivateRegistryIsolatesCounts) {
  const auto scenario = small_scenario(3);
  const TraceStore& trace = *scenario.trace;

  obs::MetricsRegistry mine;
  mine.set_enabled(true);
  const AnalysisContext ctx(trace, {}, &mine);
  analysis::classify_population(ctx, CloudType::kPublic, 100);

  const auto snap = mine.snapshot();
  EXPECT_GT(snap.counter("analysis.passes"), 0u);
  EXPECT_GT(snap.counter("analysis.vms_classified"), 0u);
  // The process-global registry (disabled by default) saw none of it.
  const auto global_snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(global_snap.counter("analysis.vms_classified"), 0u);
}

TEST(ObsContextTest, PhaseTimerRecordsCounterHistogramAndSpan) {
  const auto scenario = small_scenario(3);
  obs::MetricsRegistry registry;
  obs::TraceSink sink;
  registry.set_enabled(true);
  sink.set_enabled(true);
  const AnalysisContext ctx(*scenario.trace, {}, &registry, &sink);
  { const auto phase = ctx.phase("test.phase"); }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("analysis.passes"), 1u);
  bool saw_histogram = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "analysis.pass_seconds") {
      EXPECT_EQ(h.count, 1u);
      saw_histogram = true;
    }
  }
  EXPECT_TRUE(saw_histogram);
  EXPECT_EQ(sink.event_count(), 1u);
}

// Satellite regression: before AnalysisContext, the report entry point had
// no way to receive a ParallelConfig. Now it does — and the report bytes
// must not depend on the thread count.
TEST(ObsContextTest, ReportByteIdenticalAtOneAndEightThreads) {
  const auto scenario = small_scenario(13);
  const TraceStore& trace = *scenario.trace;

  auto render = [&](std::size_t threads) {
    std::ostringstream out;
    analysis::write_characterization_report(
        AnalysisContext(trace, ParallelConfig::with_threads(threads)), out);
    return out.str();
  };
  const std::string serial = render(1);
  const std::string parallel = render(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  // A reused named context agrees byte-for-byte with the temporaries above.
  std::ostringstream via_ctx;
  const AnalysisContext ctx(trace, ParallelConfig::with_threads(8));
  analysis::write_characterization_report(ctx, via_ctx);
  EXPECT_EQ(serial, via_ctx.str());
}

}  // namespace
}  // namespace cloudlens
