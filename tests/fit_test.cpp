// Profile fitting: generate -> fit must recover the planted parameters.
#include "workloads/fit.h"

#include <gtest/gtest.h>

#include "analysis/context.h"
#include "analysis/insights.h"
#include "common/check.h"
#include "workloads/generator.h"

namespace cloudlens::workloads {
namespace {

class FitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioOptions options;
    options.scale = 0.2;
    options.seed = 31;
    scenario_ = new Scenario(make_scenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
};

Scenario* FitTest::scenario_ = nullptr;

TEST_F(FitTest, RecoversPrivatePopulationCounts) {
  const auto planted = CloudProfile::azure_private().scaled(0.2);
  const auto fit = fit_profile(*scenario_->trace, CloudType::kPrivate,
                               CloudProfile::azure_private());
  EXPECT_EQ(fit.services_observed,
            static_cast<std::size_t>(planted.first_party_services));
  EXPECT_EQ(fit.profile.third_party_subscriptions, 0);
  EXPECT_NEAR(fit.profile.subs_per_service_mean,
              planted.subs_per_service_mean, 0.25);
}

TEST_F(FitTest, RecoversPublicPopulationCounts) {
  const auto planted = CloudProfile::azure_public().scaled(0.2);
  const auto fit = fit_profile(*scenario_->trace, CloudType::kPublic,
                               CloudProfile::azure_public());
  EXPECT_EQ(fit.profile.third_party_subscriptions,
            planted.third_party_subscriptions);
}

TEST_F(FitTest, RecoversDeploymentSizeParameters) {
  const auto planted = CloudProfile::azure_private().scaled(0.2);
  const auto fit = fit_profile(*scenario_->trace, CloudType::kPrivate,
                               CloudProfile::azure_private());
  // mu in log space: ln(90) ~ 4.5; allow the churn/termination drift.
  EXPECT_NEAR(fit.profile.deploy_size_mu, planted.deploy_size_mu, 0.5);
  EXPECT_NEAR(fit.profile.deploy_size_sigma, planted.deploy_size_sigma, 0.3);
}

TEST_F(FitTest, RecoversRegionSpread) {
  const auto planted = CloudProfile::azure_public();
  const auto fit = fit_profile(*scenario_->trace, CloudType::kPublic,
                               CloudProfile::azure_public());
  ASSERT_FALSE(fit.profile.region_count_weights.empty());
  // Single-region share ~0.80 planted.
  EXPECT_NEAR(fit.profile.region_count_weights[0],
              planted.region_count_weights[0], 0.08);
}

TEST_F(FitTest, RecoversLifetimeShares) {
  const auto fit = fit_profile(*scenario_->trace, CloudType::kPublic,
                               CloudProfile::azure_public());
  EXPECT_NEAR(fit.profile.lifetime.shortest_bin_share(), 0.81, 0.05);
  const auto fit_priv = fit_profile(*scenario_->trace, CloudType::kPrivate,
                                    CloudProfile::azure_private());
  EXPECT_NEAR(fit_priv.profile.lifetime.shortest_bin_share(), 0.49, 0.08);
}

TEST_F(FitTest, RecoversPatternMixContrast) {
  const auto priv = fit_profile(*scenario_->trace, CloudType::kPrivate,
                                CloudProfile::azure_private());
  const auto pub = fit_profile(*scenario_->trace, CloudType::kPublic,
                               CloudProfile::azure_public());
  EXPECT_GT(priv.profile.pattern_mix.diurnal,
            pub.profile.pattern_mix.diurnal);
  EXPECT_GT(pub.profile.pattern_mix.stable, priv.profile.pattern_mix.stable);
  EXPECT_GT(priv.profile.pattern_mix.hourly_peak,
            pub.profile.pattern_mix.hourly_peak);
}

TEST_F(FitTest, RecoversChurnContrast) {
  const auto priv = fit_profile(*scenario_->trace, CloudType::kPrivate,
                                CloudProfile::azure_private());
  const auto pub = fit_profile(*scenario_->trace, CloudType::kPublic,
                               CloudProfile::azure_public());
  // Bursts detected in the private cloud only.
  EXPECT_GT(priv.profile.burst_churn.bursts_per_week, 0.0);
  EXPECT_GT(priv.burst_hours_detected, 0u);
  EXPECT_LT(pub.profile.burst_churn.bursts_per_week,
            priv.profile.burst_churn.bursts_per_week);
  // Public churn level is clearly higher (the diurnal autoscaling side).
  EXPECT_GT(pub.mean_creations_per_hour_per_region,
            2 * priv.mean_creations_per_hour_per_region);
}

TEST_F(FitTest, RecoversRegionAgnosticTendency) {
  const auto priv = fit_profile(*scenario_->trace, CloudType::kPrivate,
                                CloudProfile::azure_private());
  EXPECT_GT(priv.profile.region_agnostic_prob, 0.4);
}

TEST_F(FitTest, SyntheticTwinReproducesInsights) {
  // The headline property: generate from the *fitted* profiles and the
  // paper's four insights must still hold in the twin.
  ScenarioOptions twin_options;
  twin_options.scale = 1.0;  // fitted counts already carry the scale
  twin_options.seed = 99;
  twin_options.private_profile =
      fit_profile(*scenario_->trace, CloudType::kPrivate,
                  CloudProfile::azure_private())
          .profile;
  twin_options.public_profile =
      fit_profile(*scenario_->trace, CloudType::kPublic,
                  CloudProfile::azure_public())
          .profile;
  const auto twin = make_scenario(twin_options);
  const auto verdicts = analysis::evaluate_insights(AnalysisContext(*twin.trace));
  EXPECT_TRUE(verdicts.insight1);
  EXPECT_TRUE(verdicts.insight2);
  EXPECT_TRUE(verdicts.insight3);
  EXPECT_TRUE(verdicts.insight4);
}


TEST(FitEdgeTest, EmptyCloudRejected) {
  const Topology topo = build_topology(default_topology_spec());
  TraceStore trace(&topo);  // no subscriptions at all
  EXPECT_THROW(fit_profile(trace, CloudType::kPrivate,
                           CloudProfile::azure_private()),
               CheckError);
}

TEST(FitEdgeTest, PopulationScaleShrinksCounts) {
  ScenarioOptions options;
  options.scale = 0.1;
  const auto scenario = make_scenario(options);
  FitOptions half;
  half.population_scale = 0.5;
  const auto full = fit_profile(*scenario.trace, CloudType::kPublic,
                                CloudProfile::azure_public());
  const auto scaled = fit_profile(*scenario.trace, CloudType::kPublic,
                                  CloudProfile::azure_public(), half);
  EXPECT_NEAR(double(scaled.profile.third_party_subscriptions),
              0.5 * double(full.profile.third_party_subscriptions), 1.0);
  EXPECT_NEAR(scaled.profile.diurnal_churn.base_per_hour,
              0.5 * full.profile.diurnal_churn.base_per_hour,
              0.05 * full.profile.diurnal_churn.base_per_hour);
}

}  // namespace
}  // namespace cloudlens::workloads
