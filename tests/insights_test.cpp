#include "analysis/context.h"
#include "analysis/insights.h"

#include <gtest/gtest.h>

#include "workloads/generator.h"

namespace cloudlens::analysis {
namespace {

TEST(InsightsTest, AllFourHoldOnCalibratedScenario) {
  workloads::ScenarioOptions options;
  options.scale = 0.15;
  options.seed = 21;
  const auto scenario = workloads::make_scenario(options);
  const auto verdicts = evaluate_insights(AnalysisContext(*scenario.trace));

  EXPECT_TRUE(verdicts.insight1)
      << "vms/sub " << verdicts.median_vms_per_subscription.private_value
      << " vs " << verdicts.median_vms_per_subscription.public_value;
  EXPECT_TRUE(verdicts.insight2)
      << "cv " << verdicts.median_creation_cv.private_value << " vs "
      << verdicts.median_creation_cv.public_value;
  EXPECT_TRUE(verdicts.insight3)
      << "diurnal " << verdicts.private_mix.diurnal << " vs "
      << verdicts.public_mix.diurnal;
  EXPECT_TRUE(verdicts.insight4)
      << "corr " << verdicts.median_node_correlation.private_value << " vs "
      << verdicts.median_node_correlation.public_value;
  EXPECT_TRUE(verdicts.all());
}

TEST(InsightsTest, SymmetricCloudsBreakTheContrasts) {
  // Ablation at the insight level: make the "private" cloud behave like the
  // public one — the insights must NOT be observed (no false positives).
  workloads::ScenarioOptions options;
  options.scale = 0.12;
  options.seed = 22;
  options.private_profile = workloads::CloudProfile::azure_public();
  options.private_profile.cloud = CloudType::kPrivate;
  const auto scenario = workloads::make_scenario(options);
  const auto verdicts = evaluate_insights(AnalysisContext(*scenario.trace));
  EXPECT_FALSE(verdicts.insight1);
  EXPECT_FALSE(verdicts.insight2);
  EXPECT_FALSE(verdicts.insight3);
  EXPECT_FALSE(verdicts.all());
}

TEST(InsightsTest, RenderMentionsEveryInsight) {
  workloads::ScenarioOptions options;
  options.scale = 0.08;
  const auto scenario = workloads::make_scenario(options);
  const auto verdicts = evaluate_insights(AnalysisContext(*scenario.trace));
  const std::string text = render_insights(verdicts);
  EXPECT_NE(text.find("Insight 1"), std::string::npos);
  EXPECT_NE(text.find("Insight 2"), std::string::npos);
  EXPECT_NE(text.find("Insight 3"), std::string::npos);
  EXPECT_NE(text.find("Insight 4"), std::string::npos);
  EXPECT_NE(text.find("median VMs per subscription"), std::string::npos);
}

}  // namespace
}  // namespace cloudlens::analysis
