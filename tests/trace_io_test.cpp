#include "cloudsim/trace_io.h"
#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"
#include "testutil.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

TEST(SampledUtilizationTest, StepFunctionWithClamping) {
  const TimeGrid grid{0, kHour, 3};
  SampledUtilization model(grid, {0.1, 0.5, 0.9});
  EXPECT_DOUBLE_EQ(model.at(-kHour), 0.1);   // clamp below
  EXPECT_DOUBLE_EQ(model.at(0), 0.1);
  EXPECT_DOUBLE_EQ(model.at(kHour + kMinute), 0.5);
  EXPECT_DOUBLE_EQ(model.at(10 * kHour), 0.9);  // clamp above
  EXPECT_EQ(model.kind(), "sampled");
}

TEST(SampledUtilizationTest, SizeMismatchThrows) {
  EXPECT_THROW(SampledUtilization(TimeGrid{0, kHour, 3}, {0.1}), CheckError);
}

class TraceIoTest : public ::testing::Test {
 protected:
  TraceIoTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(TraceIoTest, TopologyRoundTrip) {
  std::ostringstream out;
  export_topology(topo_, out);
  std::istringstream topo_in(out.str());
  std::istringstream vm_in("vm,subscription,service,cloud,party,region,"
                           "cluster,rack,node,cores,memory_gb,created,"
                           "deleted,pattern\n");
  const auto imported = import_trace(topo_in, vm_in, nullptr);
  const Topology& t = *imported.topology;
  EXPECT_EQ(t.regions().size(), topo_.regions().size());
  EXPECT_EQ(t.datacenters().size(), topo_.datacenters().size());
  EXPECT_EQ(t.clusters().size(), topo_.clusters().size());
  EXPECT_EQ(t.racks().size(), topo_.racks().size());
  EXPECT_EQ(t.nodes().size(), topo_.nodes().size());
  for (std::size_t i = 0; i < t.nodes().size(); ++i) {
    EXPECT_EQ(t.nodes()[i].rack, topo_.nodes()[i].rack);
    EXPECT_EQ(t.nodes()[i].cluster, topo_.nodes()[i].cluster);
    EXPECT_EQ(t.nodes()[i].cloud, topo_.nodes()[i].cloud);
    EXPECT_DOUBLE_EQ(t.nodes()[i].total_cores, topo_.nodes()[i].total_cores);
  }
  for (std::size_t i = 0; i < t.regions().size(); ++i) {
    EXPECT_EQ(t.regions()[i].name, topo_.regions()[i].name);
    EXPECT_DOUBLE_EQ(t.regions()[i].tz_offset_hours,
                     topo_.regions()[i].tz_offset_hours);
  }
}

TEST_F(TraceIoTest, VmTableRoundTrip) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.3));
  fx_.add_vm(CloudType::kPublic, fx_.public_sub,
             test::first_node(topo_, CloudType::kPublic), 2, kHour,
             5 * kHour);

  std::ostringstream topo_out, vm_out;
  export_topology(topo_, topo_out);
  export_vm_table(fx_.trace, vm_out);
  std::istringstream topo_in(topo_out.str()), vm_in(vm_out.str());
  const auto imported = import_trace(topo_in, vm_in, nullptr);
  const TraceStore& t = *imported.trace;

  ASSERT_EQ(t.vms().size(), 2u);
  const VmRecord& a = t.vms()[0];
  EXPECT_EQ(a.cloud, CloudType::kPrivate);
  EXPECT_EQ(a.party, PartyType::kFirstParty);
  EXPECT_EQ(a.created, -kDay);
  EXPECT_FALSE(a.ended());
  EXPECT_DOUBLE_EQ(a.cores, 4);
  const VmRecord& b = t.vms()[1];
  EXPECT_EQ(b.cloud, CloudType::kPublic);
  EXPECT_EQ(b.created, kHour);
  EXPECT_EQ(b.deleted, 5 * kHour);
  // Subscriptions reconstructed with the right metadata.
  EXPECT_EQ(t.subscription(a.subscription).party, PartyType::kFirstParty);
  EXPECT_EQ(t.subscription(b.subscription).cloud, CloudType::kPublic);
}

TEST_F(TraceIoTest, UtilizationRoundTrip) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const VmId id =
      fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
                 std::make_shared<ConstantUtilization>(0.37));

  std::ostringstream topo_out, vm_out, util_out;
  export_topology(topo_, topo_out);
  export_vm_table(fx_.trace, vm_out);
  export_utilization(fx_.trace, util_out);

  std::istringstream topo_in(topo_out.str()), vm_in(vm_out.str()),
      util_in(util_out.str());
  const auto imported = import_trace(topo_in, vm_in, &util_in);
  const VmRecord& vm = imported.trace->vm(id);
  ASSERT_NE(vm.utilization, nullptr);
  EXPECT_EQ(vm.utilization->kind(), "sampled");
  const TimeGrid& grid = imported.trace->telemetry_grid();
  for (std::size_t i = 0; i < grid.count; i += 101)
    EXPECT_NEAR(vm.utilization->at(grid.at(i)), 0.37, 1e-6);
}

TEST_F(TraceIoTest, PatternColumnCarriesGroundTruth) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             std::make_shared<workloads::DiurnalUtilization>(
                 workloads::DiurnalUtilization::Params{}, 1));
  std::ostringstream vm_out;
  export_vm_table(fx_.trace, vm_out);
  EXPECT_NE(vm_out.str().find(",diurnal"), std::string::npos);
}

TEST_F(TraceIoTest, MalformedInputsRejected) {
  std::istringstream bad_topo("wrong,header\n");
  std::istringstream vm_in("vm,whatever\n");
  EXPECT_THROW(import_trace(bad_topo, vm_in, nullptr), CheckError);

  std::ostringstream topo_out;
  export_topology(topo_, topo_out);
  {
    std::istringstream topo_in(topo_out.str());
    std::istringstream bad_vm("vm,subscription\n1,2\n");
    EXPECT_THROW(import_trace(topo_in, bad_vm, nullptr), CheckError);
  }
}

TEST_F(TraceIoTest, MetadataOnlyImportCarriesNoUtilizationModel) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));

  std::ostringstream topo_out, vm_out;
  export_topology(topo_, topo_out);
  export_vm_table(fx_.trace, vm_out);
  std::istringstream topo_in(topo_out.str()), vm_in(vm_out.str());
  const auto imported = import_trace(topo_in, vm_in, nullptr);
  ASSERT_EQ(imported.trace->vms().size(), 1u);
  EXPECT_EQ(imported.trace->vms()[0].utilization, nullptr);
}

TEST_F(TraceIoTest, EmptyDeletedFieldRoundTripsAsAlive) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, kHour, kNoEnd);

  std::ostringstream topo_out, vm_out;
  export_topology(topo_, topo_out);
  export_vm_table(fx_.trace, vm_out);
  // The still-alive VM's `deleted` column is exported as the empty string
  // (between `created` and `pattern`), not a sentinel number.
  EXPECT_NE(vm_out.str().find(std::to_string(kHour) + ",,"),
            std::string::npos);

  std::istringstream topo_in(topo_out.str()), vm_in(vm_out.str());
  const auto imported = import_trace(topo_in, vm_in, nullptr);
  ASSERT_EQ(imported.trace->vms().size(), 1u);
  const VmRecord& vm = imported.trace->vms()[0];
  EXPECT_FALSE(vm.ended());
  EXPECT_EQ(vm.deleted, kNoEnd);
}

TEST(TraceIoScenarioTest, VmTableExportImportExportIsByteStable) {
  // One import normalizes the pattern column (generator labels become
  // "sampled"/"unknown"); from then on export∘import must be a fixed
  // point: re-importing an exported vmtable and exporting again cannot
  // move a byte.
  workloads::ScenarioOptions options;
  options.scale = 0.03;
  options.seed = 13;
  const auto scenario = workloads::make_scenario(options);

  std::ostringstream topo_out, vm_out0, util_out;
  export_topology(*scenario.topology, topo_out);
  export_vm_table(*scenario.trace, vm_out0);
  TraceExportOptions ex;
  ex.max_vms_with_utilization = 300;
  export_utilization(*scenario.trace, util_out, ex);

  std::istringstream topo_in1(topo_out.str()), vm_in1(vm_out0.str()),
      util_in1(util_out.str());
  const auto first = import_trace(topo_in1, vm_in1, &util_in1);
  std::ostringstream vm_out1;
  export_vm_table(*first.trace, vm_out1);

  std::istringstream topo_in2(topo_out.str()), vm_in2(vm_out1.str());
  const auto second = import_trace(topo_in2, vm_in2, nullptr);
  std::ostringstream vm_out2;
  export_vm_table(*second.trace, vm_out2);

  // Pattern labels aside (restored VMs carry sampled models or none), the
  // two imported generations must agree byte-for-byte except that the
  // second import had no utilization CSV, which only affects `pattern`.
  std::istringstream topo_in3(topo_out.str()), vm_in3(vm_out1.str()),
      util_in3(util_out.str());
  const auto third = import_trace(topo_in3, vm_in3, &util_in3);
  std::ostringstream vm_out3;
  export_vm_table(*third.trace, vm_out3);
  EXPECT_EQ(vm_out1.str(), vm_out3.str());
  EXPECT_EQ(vm_out1.str().size(), vm_out2.str().size());
}

TEST(TraceIoScenarioTest, CappedUtilizationExportCountsDroppedVms) {
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 3;
  const auto scenario = workloads::make_scenario(options);
  std::size_t eligible = 0;
  for (const auto& vm : scenario.trace->vms())
    if (vm.utilization != nullptr) ++eligible;
  ASSERT_GT(eligible, 40u);

  auto& metrics = obs::MetricsRegistry::global();
  metrics.reset();
  metrics.set_enabled(true);

  TraceExportOptions ex;
  ex.max_vms_with_utilization = 40;
  std::ostringstream util_out;
  ::testing::internal::CaptureStderr();
  export_utilization(*scenario.trace, util_out, ex);
  const std::string note = ::testing::internal::GetCapturedStderr();
  metrics.set_enabled(false);

  // Count the VMs that actually got rows.
  std::set<std::string> exported;
  std::istringstream lines(util_out.str());
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line))
    exported.insert(line.substr(0, line.find(',')));
  ASSERT_FALSE(exported.empty());
  ASSERT_LT(exported.size(), eligible);

  // The silent-truncation fix: every dropped VM is counted and the export
  // says so on stderr instead of quietly thinning the data.
  EXPECT_EQ(metrics.snapshot().counter("trace_io.utilization_vms_dropped"),
            eligible - exported.size());
  EXPECT_NE(note.find("capped"), std::string::npos);
  EXPECT_NE(note.find("--util-vms"), std::string::npos);

  // An uncapped export stays silent and counts nothing.
  metrics.reset();
  metrics.set_enabled(true);
  TraceExportOptions uncapped;
  uncapped.max_vms_with_utilization = 0;
  std::ostringstream all_out;
  ::testing::internal::CaptureStderr();
  export_utilization(*scenario.trace, all_out, uncapped);
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
  EXPECT_EQ(metrics.snapshot().counter("trace_io.utilization_vms_dropped"),
            0u);
  metrics.set_enabled(false);
}

TEST(TraceIoScenarioTest, GeneratedScenarioSurvivesRoundTrip) {
  workloads::ScenarioOptions options;
  options.scale = 0.04;
  options.seed = 5;
  const auto scenario = workloads::make_scenario(options);
  const TraceStore& original = *scenario.trace;

  std::ostringstream topo_out, vm_out, util_out;
  export_topology(*scenario.topology, topo_out);
  export_vm_table(original, vm_out);
  TraceExportOptions ex;
  ex.max_vms_with_utilization = 400;
  export_utilization(original, util_out, ex);

  std::istringstream topo_in(topo_out.str()), vm_in(vm_out.str()),
      util_in(util_out.str());
  const auto imported = import_trace(topo_in, vm_in, &util_in);
  const TraceStore& restored = *imported.trace;

  ASSERT_EQ(restored.vms().size(), original.vms().size());
  EXPECT_EQ(restored.subscriptions().size(), original.subscriptions().size());
  EXPECT_EQ(restored.services().size(), original.services().size());
  // Spot-check record equality.
  for (std::size_t i = 0; i < original.vms().size(); i += 211) {
    const auto& a = original.vms()[i];
    const auto& b = restored.vms()[i];
    EXPECT_EQ(a.subscription, b.subscription);
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(a.cloud, b.cloud);
    EXPECT_EQ(a.region, b.region);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.created, b.created);
    EXPECT_EQ(a.deleted, b.deleted);
    EXPECT_DOUBLE_EQ(a.cores, b.cores);
  }
  // Both clouds received utilization samples.
  std::array<std::size_t, 2> with_util{0, 0};
  for (const auto& vm : restored.vms()) {
    if (vm.utilization)
      ++with_util[vm.cloud == CloudType::kPrivate ? 0 : 1];
  }
  EXPECT_GT(with_util[0], 50u);
  EXPECT_GT(with_util[1], 50u);
}

}  // namespace
}  // namespace cloudlens
