#!/bin/sh
# End-to-end CLI round trip: generate -> insights -> figures -> advise.
set -e
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
"$CLI" generate --out "$DIR" --scale 0.12 --seed 9 --util-vms 2500
"$CLI" insights --in "$DIR"
"$CLI" figures --in "$DIR"
test -s "$DIR/fig1a_vms_per_subscription.csv"
test -s "$DIR/fig5d_pattern_shares.csv"
test -s "$DIR/fig6_weekly_private.csv"
"$CLI" advise --in "$DIR" --cloud public | grep -q "adopt-spot"
echo "CLI round trip OK"
