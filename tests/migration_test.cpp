#include "policies/migration.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace cloudlens::policies {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  /// Predictor trained on a bimodal population: mostly 30-minute tasks
  /// plus a minority of week-long service roles. A young VM is therefore
  /// probably short-lived; a VM that has already survived hours is almost
  /// surely a long role.
  analysis::LifetimePredictor bimodal_predictor() {
    std::vector<double> lifetimes;
    for (int i = 0; i < 900; ++i) lifetimes.push_back(double(30 * kMinute));
    for (int i = 0; i < 100; ++i) lifetimes.push_back(double(7 * kDay));
    return analysis::LifetimePredictor(std::move(lifetimes));
  }

  Topology topo_;
  test::TraceFixture fx_;
  NodeId node_{test::first_node(topo_, CloudType::kPrivate)};
};

TEST_F(MigrationTest, OldVmsMigrateYoungVmsDrain) {
  EvacuationOptions options;
  options.now = 2 * kDay;
  // Old VM (2 days): conditional on surviving 30 min, it is a week-long
  // role -> long expected remaining -> migrate.
  const VmId old_vm = fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_,
                                 4, 0, kNoEnd);
  // Fresh VM (5 minutes old): likely a 30-minute task -> drain.
  const VmId young_vm =
      fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 2,
                 options.now - 5 * kMinute, options.now + 10 * kMinute);

  const auto predictor = bimodal_predictor();
  const auto plan = plan_node_evacuation(fx_.trace, predictor, node_, options);
  ASSERT_EQ(plan.migrate.size(), 1u);
  ASSERT_EQ(plan.drain.size(), 1u);
  EXPECT_EQ(plan.migrate[0], old_vm);
  EXPECT_EQ(plan.drain[0], young_vm);
  EXPECT_DOUBLE_EQ(plan.migrated_cores, 4);
  EXPECT_DOUBLE_EQ(plan.drained_cores, 2);
}

TEST_F(MigrationTest, DeadVmsIgnored) {
  EvacuationOptions options;
  options.now = 2 * kDay;
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 4, 0, kDay);
  const auto plan = plan_node_evacuation(fx_.trace, bimodal_predictor(),
                                         node_, options);
  EXPECT_TRUE(plan.migrate.empty());
  EXPECT_TRUE(plan.drain.empty());
}

TEST_F(MigrationTest, EvaluationCountsWasteAndExposure) {
  EvacuationOptions options;
  options.now = 2 * kDay;
  options.failure_grace = 2 * kHour;

  // Migrated but actually ends in 30 min: wasted migration.
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 4, 0,
             options.now + 30 * kMinute);
  // Migrated and truly long-lived: justified.
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 4, 0, kNoEnd);
  // Drained and ends quickly: saved migration (cores_saved).
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 2,
             options.now - 5 * kMinute, options.now + 20 * kMinute);
  // Drained but outlives the grace window: exposed to the failure.
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 2,
             options.now - 5 * kMinute, options.now + kDay);

  const auto plan = plan_node_evacuation(fx_.trace, bimodal_predictor(),
                                         node_, options);
  ASSERT_EQ(plan.migrate.size(), 2u);
  ASSERT_EQ(plan.drain.size(), 2u);

  const auto eval = evaluate_evacuation(fx_.trace, plan, options);
  EXPECT_EQ(eval.alive_vms, 4u);
  EXPECT_EQ(eval.planned_migrations, 2u);
  EXPECT_EQ(eval.baseline_migrations, 4u);
  EXPECT_EQ(eval.wasted_migrations, 1u);
  EXPECT_EQ(eval.exposed_vms, 1u);
  EXPECT_DOUBLE_EQ(eval.cores_saved, 2);
}

TEST_F(MigrationTest, FleetAggregation) {
  EvacuationOptions options;
  options.now = 2 * kDay;
  const auto clusters = topo_.clusters_in(RegionId(0), CloudType::kPrivate);
  const NodeId other = topo_.cluster(clusters[0]).nodes[1];
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 4, 0, kNoEnd);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, other, 4, 0, kNoEnd);
  const auto eval = evaluate_fleet_evacuation(
      fx_.trace, bimodal_predictor(), CloudType::kPrivate, 0, options);
  EXPECT_EQ(eval.alive_vms, 2u);
  EXPECT_EQ(eval.baseline_migrations, 2u);
}

TEST_F(MigrationTest, KnowledgeBeatsNaiveOnMigrationVolume) {
  // A node full of short tasks: knowledge-aware plan migrates almost
  // nothing; the naive baseline migrates everything.
  EvacuationOptions options;
  options.now = 2 * kDay;
  for (int i = 0; i < 10; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 1,
               options.now - 2 * kMinute, options.now + 20 * kMinute);
  const auto plan = plan_node_evacuation(fx_.trace, bimodal_predictor(),
                                         node_, options);
  const auto eval = evaluate_evacuation(fx_.trace, plan, options);
  EXPECT_LT(eval.planned_migrations, eval.baseline_migrations / 2);
  EXPECT_EQ(eval.exposed_vms, 0u);
}

}  // namespace
}  // namespace cloudlens::policies
