// Out-of-core telemetry shard store tests: router stability and
// subscription alignment, shard rows bit-identical to the resident panel,
// streamed analyses bit-identical to the resident path at any thread
// count, warm spill-file reuse, budget-driven eviction, and the
// TraceStore sharded-mode contract (telemetry_panel() == nullptr while
// sharding is enabled).
#include "cloudsim/shard.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "analysis/context.h"
#include "analysis/classifier.h"
#include "analysis/spatial.h"
#include "analysis/utilization.h"
#include "cloudsim/telemetry_panel.h"
#include "cloudsim/trace.h"
#include "obs/metrics.h"
#include "workloads/generator.h"

namespace cloudlens {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Unique spill directory under the system temp dir; removed on scope
/// exit unless the store already cleaned it.
class TempSpillDir {
 public:
  explicit TempSpillDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("cloudlens-shardtest-" + tag))
                .string();
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ~TempSpillDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ShardRouter, IsAPureFunctionOfSubscriptionAndK) {
  for (std::uint32_t k : {1u, 2u, 7u, 16u, 101u}) {
    for (std::uint64_t raw : {0ull, 1ull, 42ull, 65535ull, 123456789ull}) {
      const SubscriptionId sub(
          static_cast<SubscriptionId::underlying>(raw));
      const std::uint32_t s = shard_of_subscription(sub, k);
      EXPECT_LT(s, k);
      EXPECT_EQ(s, shard_of_subscription(sub, k));  // stable
    }
  }
  // K=1 degenerates to a single shard.
  EXPECT_EQ(shard_of_subscription(SubscriptionId(7), 1), 0u);
  // Distinct subscriptions spread over shards (not all colliding).
  std::vector<bool> hit(16, false);
  for (std::uint64_t raw = 0; raw < 256; ++raw) {
    hit[shard_of_subscription(
        SubscriptionId(static_cast<SubscriptionId::underlying>(raw)), 16)] =
        true;
  }
  std::size_t used = 0;
  for (bool h : hit) used += h ? 1 : 0;
  EXPECT_GT(used, 8u);
}

class ShardGeneratedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::ScenarioOptions options;
    options.scale = 0.03;
    options.seed = 17;
    scenario_ = new workloads::Scenario(workloads::make_scenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static workloads::Scenario* scenario_;
};

workloads::Scenario* ShardGeneratedTest::scenario_ = nullptr;

TEST_F(ShardGeneratedTest, RowsBitIdenticalToResidentPanel) {
  const TraceStore& trace = *scenario_->trace;
  const TelemetryPanel* panel = trace.telemetry_panel();
  ASSERT_NE(panel, nullptr);

  TempSpillDir dir("rows");
  TelemetryShardingOptions opts;
  opts.shards = 7;
  opts.spill_dir = dir.path();
  TelemetryShardStore store(trace, opts);
  EXPECT_EQ(store.shard_count(), 7u);
  EXPECT_EQ(store.grid().count, trace.telemetry_grid().count);

  // Every VM belongs to exactly one shard, aligned with its subscription.
  std::size_t members = 0;
  for (std::uint32_t s = 0; s < store.shard_count(); ++s) {
    for (const VmId id : store.shard_vms(s)) {
      ++members;
      EXPECT_EQ(store.shard_of_vm(id), s);
      EXPECT_EQ(store.shard_of(trace.vms()[id.value()].subscription), s);
    }
  }
  EXPECT_EQ(members, trace.vms().size());

  // Shard rows reproduce the resident panel bit for bit (full-res and
  // hourly). Stride keeps the test fast while crossing every shard.
  for (std::size_t v = 0; v < trace.vms().size(); v += 23) {
    const VmId id(static_cast<VmId::underlying>(v));
    const auto a = panel->row(id);
    const auto b = store.row(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 53) {
      EXPECT_EQ(bits(a[i]), bits(b[i])) << "vm " << v << " tick " << i;
    }
    const auto ha = panel->hourly_row(id);
    const auto hb = store.hourly_row(id);
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(bits(ha[i]), bits(hb[i])) << "vm " << v << " hour " << i;
    }
  }
}

TEST_F(ShardGeneratedTest, EvictionRespectsBudgetAndCountsPages) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir dir("evict");
  TelemetryShardingOptions opts;
  opts.shards = 5;
  opts.budget_bytes = 0;  // at most one resident shard after eviction
  opts.spill_dir = dir.path();
  TelemetryShardStore store(trace, opts);

  auto& metrics = obs::MetricsRegistry::global();
  metrics.reset();
  metrics.set_enabled(true);
  const auto before = metrics.snapshot();

  // Touch one VM per shard: all five shards map in.
  for (std::uint32_t s = 0; s < store.shard_count(); ++s) {
    const auto vms = store.shard_vms(s);
    ASSERT_FALSE(vms.empty());
    EXPECT_FALSE(store.row(vms.front()).empty());
  }
  EXPECT_GT(store.resident_bytes(), 0u);

  store.evict_over_budget();
  // Budget 0 keeps at most the most-recently-used shard resident.
  EXPECT_LE(store.resident_bytes(), store.spill_bytes() / 5 + 4096);

  store.evict_all();
  EXPECT_EQ(store.resident_bytes(), 0u);

  const auto after = metrics.snapshot();
  metrics.set_enabled(false);
  EXPECT_GE(after.counter("panel.shard_page_ins") -
                before.counter("panel.shard_page_ins"),
            5u);
  EXPECT_GE(after.counter("panel.shard_evictions") -
                before.counter("panel.shard_evictions"),
            5u);
  EXPECT_GT(after.counter("panel.shard_row_reads") -
                before.counter("panel.shard_row_reads"),
            0u);
}

TEST_F(ShardGeneratedTest, WarmStartReusesSpillFilesWithMatchingDigest) {
  const TraceStore& trace = *scenario_->trace;
  TempSpillDir dir("warm");
  TelemetryShardingOptions opts;
  opts.shards = 4;
  opts.spill_dir = dir.path();
  opts.keep_files = true;

  auto& metrics = obs::MetricsRegistry::global();
  metrics.reset();
  metrics.set_enabled(true);

  std::uint64_t digest = 0;
  {
    TelemetryShardStore cold(trace, opts);
    digest = cold.router_digest();
    EXPECT_EQ(metrics.snapshot().counter("panel.shard_spills"), 4u);
  }
  // Files survived (keep_files) and the second build reuses them: no new
  // spills, identical digest, identical rows.
  {
    TelemetryShardStore warm(trace, opts);
    EXPECT_EQ(warm.router_digest(), digest);
    EXPECT_EQ(metrics.snapshot().counter("panel.shard_spills"), 4u);
    const TelemetryPanel* panel = trace.telemetry_panel();
    ASSERT_NE(panel, nullptr);
    const VmId id(0);
    const auto a = panel->row(id);
    const auto b = warm.row(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 101)
      EXPECT_EQ(bits(a[i]), bits(b[i]));
  }
  metrics.set_enabled(false);
}

TEST_F(ShardGeneratedTest, TraceStoreShardedModeContract) {
  TraceStore& trace = *scenario_->trace;
  ASSERT_NE(trace.telemetry_panel(), nullptr);

  TempSpillDir dir("mode");
  TelemetryShardingOptions opts;
  opts.shards = 3;
  opts.spill_dir = dir.path();
  trace.set_telemetry_sharding(opts);

  EXPECT_TRUE(trace.telemetry_sharding_enabled());
  // The resident panel is unreachable while sharded: consumers either
  // stream via telemetry_shards() or fall back to scratch rows.
  EXPECT_EQ(trace.telemetry_panel(), nullptr);
  const TelemetryShardStore* shards = trace.telemetry_shards();
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->shard_count(), 3u);
  EXPECT_FALSE(trace.adopt_telemetry_panel(nullptr));

  trace.clear_telemetry_sharding();
  EXPECT_FALSE(trace.telemetry_sharding_enabled());
  EXPECT_EQ(trace.telemetry_shards(), nullptr);
  EXPECT_NE(trace.telemetry_panel(), nullptr);
}

TEST_F(ShardGeneratedTest, StreamedAnalysesBitIdenticalToResident) {
  TraceStore& trace = *scenario_->trace;
  ASSERT_NE(trace.telemetry_panel(), nullptr);

  // Resident reference results (panel-backed, 2 worker threads).
  const ParallelConfig two = ParallelConfig::with_threads(2);
  const auto shares_ref =
      analysis::classify_population(AnalysisContext(trace, two), CloudType::kPrivate, 150, {});
  const auto dist_ref =
      analysis::utilization_distribution(AnalysisContext(trace, two), CloudType::kPublic, 150);
  const auto corr_ref =
      analysis::node_vm_correlations(AnalysisContext(trace, two), CloudType::kPrivate, 40);
  const auto xr_ref = analysis::cross_region_correlations(AnalysisContext(trace, two), CloudType::kPrivate, 60, 10);

  TempSpillDir dir("analyses");
  TelemetryShardingOptions opts;
  opts.shards = 6;
  opts.budget_bytes = 1;  // force eviction at every stream boundary
  opts.spill_dir = dir.path();
  trace.set_telemetry_sharding(opts);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    const ParallelConfig par = ParallelConfig::with_threads(threads);
    const auto shares = analysis::classify_population(AnalysisContext(trace, par), CloudType::kPrivate, 150, {});
    EXPECT_EQ(shares.classified, shares_ref.classified);
    EXPECT_EQ(bits(shares.diurnal), bits(shares_ref.diurnal));
    EXPECT_EQ(bits(shares.stable), bits(shares_ref.stable));
    EXPECT_EQ(bits(shares.irregular), bits(shares_ref.irregular));
    EXPECT_EQ(bits(shares.hourly_peak), bits(shares_ref.hourly_peak));

    const auto dist =
        analysis::utilization_distribution(AnalysisContext(trace, par), CloudType::kPublic, 150);
    EXPECT_EQ(dist.vms_used, dist_ref.vms_used);
    ASSERT_EQ(dist.weekly.p50.size(), dist_ref.weekly.p50.size());
    for (std::size_t i = 0; i < dist.weekly.p50.size(); ++i) {
      EXPECT_EQ(bits(dist.weekly.p25[i]), bits(dist_ref.weekly.p25[i]));
      EXPECT_EQ(bits(dist.weekly.p50[i]), bits(dist_ref.weekly.p50[i]));
      EXPECT_EQ(bits(dist.weekly.p75[i]), bits(dist_ref.weekly.p75[i]));
      EXPECT_EQ(bits(dist.weekly.p95[i]), bits(dist_ref.weekly.p95[i]));
    }
    for (std::size_t h = 0; h < 24; ++h) {
      EXPECT_EQ(bits(dist.daily_p50[h]), bits(dist_ref.daily_p50[h]));
      EXPECT_EQ(bits(dist.daily_p95[h]), bits(dist_ref.daily_p95[h]));
    }

    const auto corr =
        analysis::node_vm_correlations(AnalysisContext(trace, par), CloudType::kPrivate, 40);
    ASSERT_EQ(corr.size(), corr_ref.size());
    for (std::size_t i = 0; i < corr.size(); ++i)
      EXPECT_EQ(bits(corr[i]), bits(corr_ref[i]));

    const auto xr = analysis::cross_region_correlations(AnalysisContext(trace, par), CloudType::kPrivate, 60, 10);
    ASSERT_EQ(xr.size(), xr_ref.size());
    for (std::size_t i = 0; i < xr.size(); ++i)
      EXPECT_EQ(bits(xr[i]), bits(xr_ref[i]));
  }

  trace.clear_telemetry_sharding();
}

}  // namespace
}  // namespace cloudlens
