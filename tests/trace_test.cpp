#include "cloudsim/trace.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"

namespace cloudlens {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(TraceTest, AddAndLookupEntities) {
  ServiceInfo svc;
  svc.name = "svc";
  svc.region_agnostic = true;
  const ServiceId service = fx_.trace.add_service(svc);
  EXPECT_EQ(fx_.trace.service(service).name, "svc");
  EXPECT_TRUE(fx_.trace.service(service).region_agnostic);
  EXPECT_EQ(fx_.trace.services().size(), 1u);
  EXPECT_EQ(fx_.trace.subscriptions().size(), 2u);
}

TEST_F(TraceTest, VmRecordBasics) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const VmId id = fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4,
                             kHour, 3 * kHour);
  const VmRecord& vm = fx_.trace.vm(id);
  EXPECT_TRUE(vm.placed());
  EXPECT_TRUE(vm.ended());
  EXPECT_EQ(vm.lifetime(), 2 * kHour);
  EXPECT_TRUE(vm.alive_at(kHour));
  EXPECT_TRUE(vm.alive_at(3 * kHour - 1));
  EXPECT_FALSE(vm.alive_at(3 * kHour));
  EXPECT_FALSE(vm.alive_at(0));
}

TEST_F(TraceTest, CoversRequiresFullWindow) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const TimeGrid& grid = fx_.trace.telemetry_grid();
  const VmId full = fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4,
                               -kDay, kNoEnd);
  const VmId partial = fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node,
                                  4, kHour, kNoEnd);
  EXPECT_TRUE(fx_.trace.vm(full).covers(grid));
  EXPECT_FALSE(fx_.trace.vm(partial).covers(grid));
}

TEST_F(TraceTest, InvalidVmRejected) {
  VmRecord bad;
  bad.subscription = fx_.private_sub;
  bad.created = 5;
  bad.deleted = 5;  // zero lifetime
  EXPECT_THROW(fx_.trace.add_vm(bad), CheckError);

  VmRecord unknown_sub;
  unknown_sub.subscription = SubscriptionId(99);
  unknown_sub.created = 0;
  unknown_sub.deleted = 1;
  EXPECT_THROW(fx_.trace.add_vm(unknown_sub), CheckError);
}

TEST_F(TraceTest, NodeIndexTracksPlacedVms) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  const VmId a =
      fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  const VmId b =
      fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  const auto vms = fx_.trace.vms_on_node(node);
  ASSERT_EQ(vms.size(), 2u);
  EXPECT_EQ(vms[0], a);
  EXPECT_EQ(vms[1], b);
  EXPECT_TRUE(fx_.trace.vms_on_node(NodeId(3)).empty());
}

TEST_F(TraceTest, NodeIndexInvalidatedByNewVm) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  EXPECT_EQ(fx_.trace.vms_on_node(node).size(), 1u);  // builds index
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  EXPECT_EQ(fx_.trace.vms_on_node(node).size(), 2u);  // rebuilt
}

TEST_F(TraceTest, SubscriptionIndex) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, 0, kNoEnd);
  EXPECT_EQ(fx_.trace.vms_of_subscription(fx_.public_sub).size(), 1u);
  EXPECT_EQ(fx_.trace.vms_of_subscription(fx_.private_sub).size(), 1u);
  EXPECT_TRUE(fx_.trace.vms_of_subscription(SubscriptionId(1)).size() == 1);
}

TEST_F(TraceTest, VmUtilizationMaskedOutsideLifetime) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const VmId id =
      fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, kHour,
                 2 * kHour, std::make_shared<ConstantUtilization>(0.5));
  const TimeGrid grid{0, kTelemetryInterval, 36};  // 3 hours
  const auto series = fx_.trace.vm_utilization(id, grid);
  EXPECT_DOUBLE_EQ(series[0], 0.0);                      // before create
  EXPECT_DOUBLE_EQ(series[grid.index_of(kHour)], 0.5);   // alive
  EXPECT_DOUBLE_EQ(series[grid.index_of(2 * kHour)], 0.0);  // after delete
}

TEST_F(TraceTest, NodeUtilizationIsCoreWeighted) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  // Node has 16 cores. 8 cores at 1.0 + 4 cores at 0.5 = 10/16.
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(1.0));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));
  const TimeGrid grid{0, kTelemetryInterval, 12};
  const auto series = fx_.trace.node_utilization(node, grid);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i], 10.0 / 16.0);
}

TEST_F(TraceTest, NodeUtilizationClampedToOne) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 16, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(1.0));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 16, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(1.0));
  const TimeGrid grid{0, kTelemetryInterval, 4};
  const auto series = fx_.trace.node_utilization(node, grid);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
}

TEST_F(TraceTest, NodeUsedCoresRespectsLifetimes) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 8, 0, kHour);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, 0, kNoEnd);
  EXPECT_DOUBLE_EQ(fx_.trace.node_used_cores(node, 0), 12);
  EXPECT_DOUBLE_EQ(fx_.trace.node_used_cores(node, 2 * kHour), 4);
}

TEST_F(TraceTest, VmWithoutUtilizationGivesZeroSeries) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  const VmId id =
      fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, 0, kNoEnd);
  const TimeGrid grid{0, kTelemetryInterval, 4};
  const auto series = fx_.trace.vm_utilization(id, grid);
  for (std::size_t i = 0; i < series.size(); ++i)
    EXPECT_DOUBLE_EQ(series[i], 0.0);
}

}  // namespace
}  // namespace cloudlens
