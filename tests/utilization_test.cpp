#include "analysis/context.h"
#include "analysis/utilization.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::analysis {
namespace {

class UtilizationTest : public ::testing::Test {
 protected:
  UtilizationTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
  NodeId node_{test::first_node(topo_, CloudType::kPrivate)};
};

TEST_F(UtilizationTest, ConstantPopulationGivesFlatBands) {
  for (int i = 0; i < 5; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 1, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.3));
  const auto dist = utilization_distribution(AnalysisContext(fx_.trace), CloudType::kPrivate);
  EXPECT_EQ(dist.vms_used, 5u);
  for (std::size_t t = 0; t < dist.weekly.grid.count; t += 13) {
    EXPECT_DOUBLE_EQ(dist.weekly.p25[t], 0.3);
    EXPECT_DOUBLE_EQ(dist.weekly.p50[t], 0.3);
    EXPECT_DOUBLE_EQ(dist.weekly.p95[t], 0.3);
  }
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(dist.daily_p50[h], 0.3);
  }
}

TEST_F(UtilizationTest, MixedLevelsOrderBands) {
  for (int i = 0; i < 10; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 1, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.05 * (i + 1)));
  const auto dist = utilization_distribution(AnalysisContext(fx_.trace), CloudType::kPrivate);
  for (std::size_t t = 0; t < dist.weekly.grid.count; t += 29) {
    EXPECT_LT(dist.weekly.p25[t], dist.weekly.p50[t]);
    EXPECT_LT(dist.weekly.p50[t], dist.weekly.p75[t]);
    EXPECT_LT(dist.weekly.p75[t], dist.weekly.p95[t]);
  }
}

TEST_F(UtilizationTest, DiurnalPopulationShowsDailyProfile) {
  workloads::DiurnalUtilization::Params p;
  p.tz_offset_hours = 0;
  for (int i = 0; i < 8; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 1, -kDay, kNoEnd,
               std::make_shared<workloads::DiurnalUtilization>(p, 50 + i));
  const auto dist = utilization_distribution(AnalysisContext(fx_.trace), CloudType::kPrivate);
  // The paper's Fig. 6(c): the median near 14:00 clearly exceeds 03:00.
  EXPECT_GT(dist.daily_p50[14], dist.daily_p50[3] + 0.2);
}

TEST_F(UtilizationTest, ThrowsWithNoCoveringVms) {
  EXPECT_THROW(utilization_distribution(AnalysisContext(fx_.trace), CloudType::kPrivate),
               CheckError);
}

TEST_F(UtilizationTest, VmMeanUtilizationRespectsAliveWindow) {
  // Alive only the first half of the week at 0.4.
  const VmId id = fx_.add_vm(
      CloudType::kPrivate, fx_.private_sub, node_, 1, 0, kWeek / 2,
      std::make_shared<ConstantUtilization>(0.4));
  EXPECT_NEAR(vm_mean_utilization(AnalysisContext(fx_.trace), id), 0.4, 1e-9);
}

TEST_F(UtilizationTest, VmMeanUtilizationZeroWithoutModel) {
  const VmId id =
      fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 1, 0, kNoEnd);
  EXPECT_DOUBLE_EQ(vm_mean_utilization(AnalysisContext(fx_.trace), id), 0.0);
}

TEST_F(UtilizationTest, RegionUsedCoresAggregates) {
  // Two VMs at 0.5 x 4 cores each = 4 used cores, all week.
  for (int i = 0; i < 2; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 4, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.5));
  const auto series =
      region_used_cores_hourly(AnalysisContext(fx_.trace), CloudType::kPrivate, RegionId(0));
  for (std::size_t i = 0; i < series.size(); i += 17)
    EXPECT_NEAR(series[i], 4.0, 1e-9);
}

TEST_F(UtilizationTest, RegionUsedCoresHonorsLifetime) {
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 4, 0, kDay,
             std::make_shared<ConstantUtilization>(1.0));
  const auto series =
      region_used_cores_hourly(AnalysisContext(fx_.trace), CloudType::kPrivate, RegionId(0));
  EXPECT_NEAR(series[2], 4.0, 1e-9);    // during day 1
  EXPECT_NEAR(series[30], 0.0, 1e-9);   // day 2: VM gone
}

TEST_F(UtilizationTest, SamplingRescalesUnbiased) {
  // 40 identical VMs; sampling 10 should still estimate the full demand.
  for (int i = 0; i < 40; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 1, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.5));
  const auto full = region_used_cores_hourly(AnalysisContext(fx_.trace), CloudType::kPrivate,
                                             RegionId(0), 0);
  const auto sampled = region_used_cores_hourly(AnalysisContext(fx_.trace), CloudType::kPrivate,
                                                RegionId(0), 10);
  EXPECT_NEAR(full[0], 20.0, 1e-9);
  EXPECT_NEAR(sampled[0], 20.0, 1e-9);
}

TEST_F(UtilizationTest, InvalidRegionAggregatesAllRegions) {
  const auto clusters1 = topo_.clusters_in(RegionId(1), CloudType::kPrivate);
  const NodeId node1 = topo_.cluster(clusters1[0]).nodes.front();
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node_, 2, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(1.0));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node1, 2, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(1.0), RegionId(1));
  const auto all =
      region_used_cores_hourly(AnalysisContext(fx_.trace), CloudType::kPrivate, RegionId());
  EXPECT_NEAR(all[0], 4.0, 1e-9);
}

}  // namespace
}  // namespace cloudlens::analysis
