#include "stats/series.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace cloudlens::stats {
namespace {

TimeSeries ramp(TimeGrid grid) {
  TimeSeries s(grid);
  for (std::size_t i = 0; i < grid.count; ++i) s[i] = double(i);
  return s;
}

TEST(TimeSeriesTest, ConstructZeroed) {
  const TimeSeries s(TimeGrid{0, kHour, 24});
  EXPECT_EQ(s.size(), 24u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_DOUBLE_EQ(s[i], 0.0);
}

TEST(TimeSeriesTest, SizeMismatchThrows) {
  EXPECT_THROW(TimeSeries(TimeGrid{0, kHour, 24}, std::vector<double>(10)),
               cloudlens::CheckError);
}

TEST(TimeSeriesTest, ValueAt) {
  const auto s = ramp(TimeGrid{0, kHour, 24});
  EXPECT_DOUBLE_EQ(s.value_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.value_at(kHour + kMinute), 1.0);
  EXPECT_DOUBLE_EQ(s.value_at(23 * kHour), 23.0);
}

TEST(TimeSeriesTest, MeanAndMax) {
  const auto s = ramp(TimeGrid{0, kHour, 4});  // 0 1 2 3
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TimeSeriesTest, AddScaleClamp) {
  auto a = ramp(TimeGrid{0, kHour, 4});
  const auto b = ramp(TimeGrid{0, kHour, 4});
  a.add(b, 2.0);  // 0 3 6 9
  EXPECT_DOUBLE_EQ(a[3], 9.0);
  a.scale(0.5);  // 0 1.5 3 4.5
  EXPECT_DOUBLE_EQ(a[3], 4.5);
  a.clamp(1.0, 3.0);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[3], 3.0);
}

TEST(TimeSeriesTest, AddGridMismatchThrows) {
  TimeSeries a(TimeGrid{0, kHour, 4});
  const TimeSeries b(TimeGrid{0, kHour, 5});
  EXPECT_THROW(a.add(b), cloudlens::CheckError);
}

TEST(TimeSeriesTest, DownsampleMean) {
  const auto s = ramp(TimeGrid{0, kMinute, 6});  // 0..5
  const auto d = s.downsample_mean(3);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);  // mean(0,1,2)
  EXPECT_DOUBLE_EQ(d[1], 4.0);  // mean(3,4,5)
  EXPECT_EQ(d.grid().step, 3 * kMinute);
}

TEST(TimeSeriesTest, HourlyMeanFromTelemetry) {
  TimeSeries s(TimeGrid{0, kTelemetryInterval, 24});  // two hours of 5-min
  for (std::size_t i = 0; i < 12; ++i) s[i] = 1.0;
  for (std::size_t i = 12; i < 24; ++i) s[i] = 3.0;
  const auto h = s.hourly_mean();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_DOUBLE_EQ(h[0], 1.0);
  EXPECT_DOUBLE_EQ(h[1], 3.0);
}

TEST(TimeSeriesTest, HourOfDayProfile) {
  // Two days hourly; value = hour-of-day on day 1, hour+2 on day 2.
  TimeSeries s(TimeGrid{0, kHour, 48});
  for (std::size_t i = 0; i < 48; ++i)
    s[i] = double(i % 24) + (i >= 24 ? 2.0 : 0.0);
  const auto profile = s.hour_of_day_profile();
  ASSERT_EQ(profile.size(), 24u);
  for (int h = 0; h < 24; ++h) EXPECT_DOUBLE_EQ(profile[h], h + 1.0);
}

TEST(TimeSeriesTest, Slice) {
  const auto s = ramp(TimeGrid{0, kHour, 10});
  const auto part = s.slice(3, 4);
  ASSERT_EQ(part.size(), 4u);
  EXPECT_DOUBLE_EQ(part[0], 3.0);
  EXPECT_DOUBLE_EQ(part[3], 6.0);
  EXPECT_EQ(part.grid().start, 3 * kHour);
  EXPECT_THROW(s.slice(8, 5), cloudlens::CheckError);
}

TEST(PercentileBandsTest, ConstantPopulation) {
  const TimeGrid grid{0, kHour, 6};
  std::vector<TimeSeries> pop;
  for (int i = 0; i < 5; ++i) {
    TimeSeries s(grid);
    for (std::size_t t = 0; t < grid.count; ++t) s[t] = 0.4;
    pop.push_back(std::move(s));
  }
  const auto bands = percentile_bands(pop);
  for (std::size_t t = 0; t < grid.count; ++t) {
    EXPECT_DOUBLE_EQ(bands.p25[t], 0.4);
    EXPECT_DOUBLE_EQ(bands.p50[t], 0.4);
    EXPECT_DOUBLE_EQ(bands.p95[t], 0.4);
  }
}

TEST(PercentileBandsTest, OrderedBands) {
  const TimeGrid grid{0, kHour, 4};
  std::vector<TimeSeries> pop;
  for (int i = 0; i < 20; ++i) {
    TimeSeries s(grid);
    for (std::size_t t = 0; t < grid.count; ++t) s[t] = double(i) + double(t);
    pop.push_back(std::move(s));
  }
  const auto bands = percentile_bands(pop);
  for (std::size_t t = 0; t < grid.count; ++t) {
    EXPECT_LE(bands.p25[t], bands.p50[t]);
    EXPECT_LE(bands.p50[t], bands.p75[t]);
    EXPECT_LE(bands.p75[t], bands.p95[t]);
  }
}

TEST(PercentileBandsTest, MismatchedGridsThrow) {
  std::vector<TimeSeries> pop;
  pop.emplace_back(TimeGrid{0, kHour, 4});
  pop.emplace_back(TimeGrid{0, kHour, 5});
  EXPECT_THROW(percentile_bands(pop), cloudlens::CheckError);
}

}  // namespace
}  // namespace cloudlens::stats
