// Unit pins for the serve subsystem: the event-stream format, the
// engine's ingest validation, epoch/cutoff accounting, and query-surface
// edges. The byte-for-byte streamed-vs-batch contract lives in
// serve_equivalence_test.cpp; these tests cover the pieces in isolation.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/check.h"
#include "cloudsim/trace_io.h"
#include "serve/engine.h"
#include "serve/stream.h"
#include "testutil.h"

namespace cloudlens::serve {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class ServeStreamTest : public ::testing::Test {
 protected:
  ServeStreamTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(ServeStreamTest, StreamLayoutHeaderGridTopoEventsEnd) {
  const TimeGrid& grid = fx_.trace.telemetry_grid();
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub,
             test::first_node(topo_, CloudType::kPrivate), 4, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(0.25));
  fx_.add_vm(CloudType::kPublic, fx_.public_sub,
             test::first_node(topo_, CloudType::kPublic), 2, kHour,
             5 * kHour);  // no model: never sampled

  std::ostringstream out;
  write_event_stream(topo_, fx_.trace, out);
  const auto lines = split_lines(out.str());

  EXPECT_EQ(lines.front(), "cloudlens-stream,v1");
  EXPECT_EQ(lines[1], "grid,0,300,2016");
  std::size_t topo_rows = 0, vm_rows = 0, del_rows = 0, sample_rows = 0;
  for (const auto& line : lines) {
    if (line.rfind("topo,", 0) == 0) ++topo_rows;
    if (line.rfind("vm,", 0) == 0) ++vm_rows;
    if (line.rfind("del,", 0) == 0) ++del_rows;
    if (line.rfind("sample,", 0) == 0) ++sample_rows;
  }
  EXPECT_EQ(topo_rows, topo_.nodes().size());
  EXPECT_EQ(vm_rows, 2u);
  EXPECT_EQ(del_rows, 1u);
  // Only the modeled VM gets samples; a constant 0.25 is never elided, so
  // it reads at every alive tick of the grid.
  EXPECT_EQ(sample_rows, grid.count);
  EXPECT_EQ(lines.back(), "end");

  // Timestamps are non-decreasing across every event line.
  SimTime last = std::numeric_limits<SimTime>::min();
  for (const auto& line : lines) {
    const auto ts = event_timestamp(line);
    if (!ts) continue;
    EXPECT_GE(*ts, last) << line;
    last = *ts;
  }
}

TEST_F(ServeStreamTest, ZeroSamplesElidedExceptFirstAliveTick) {
  const TimeGrid& grid = fx_.trace.telemetry_grid();
  std::vector<double> cells(grid.count, 0.0);
  cells[5] = 0.75;  // one nonzero reading
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub,
             test::first_node(topo_, CloudType::kPrivate), 4, 0, kNoEnd,
             std::make_shared<SampledUtilization>(grid, cells));

  std::ostringstream out;
  write_event_stream(topo_, fx_.trace, out);
  std::vector<std::string> samples;
  for (const auto& line : split_lines(out.str())) {
    if (line.rfind("sample,", 0) == 0) samples.push_back(line);
  }
  // First alive tick (a zero, kept so the reader knows the VM has
  // telemetry) plus the single nonzero tick.
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], "sample,0,0,0");
  EXPECT_EQ(samples[1], "sample,0," + std::to_string(grid.at(5)) + ",0.75");
}

TEST(ServeStreamTimestampTest, EventTimestampPerLineKind) {
  EXPECT_EQ(event_timestamp("vm,3,0,,private,first-party,0,0,0,0,4,16,1200"),
            std::optional<SimTime>(1200));
  EXPECT_EQ(event_timestamp("sample,3,600,0.5"), std::optional<SimTime>(600));
  EXPECT_EQ(event_timestamp("del,3,900"), std::optional<SimTime>(900));
  EXPECT_EQ(event_timestamp("cloudlens-stream,v1"), std::nullopt);
  EXPECT_EQ(event_timestamp("grid,0,300,2016"), std::nullopt);
  EXPECT_EQ(event_timestamp("topo,0,0,0,0,0,east,-5,private,16,64"),
            std::nullopt);
  EXPECT_EQ(event_timestamp("end"), std::nullopt);
}

class ServeEngineTest : public ::testing::Test {
 protected:
  ServeEngineTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  /// Stream the fixture trace and return its lines.
  std::vector<std::string> stream_lines() {
    std::ostringstream out;
    write_event_stream(topo_, fx_.trace, out);
    return split_lines(out.str());
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(ServeEngineTest, IngestTracksEpochWatermarkAndResidency) {
  const TimeGrid& grid = fx_.trace.telemetry_grid();
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub,
             test::first_node(topo_, CloudType::kPrivate), 4, 0, 10 * kHour,
             std::make_shared<ConstantUtilization>(0.5));

  ServeEngine engine;
  for (const auto& line : stream_lines()) engine.ingest_line(line);
  EXPECT_GT(engine.events_ingested(), 0u);
  EXPECT_EQ(engine.resident_vms(), 1u);
  // The deletion at 10h is the stream's last event; ten hours of ticks
  // are complete.
  EXPECT_EQ(engine.watermark(), 10 * kHour);
  EXPECT_EQ(engine.epoch(), static_cast<std::size_t>(10 * kHour / grid.step));
  EXPECT_EQ(engine.cutoff(), 10 * kHour);
  EXPECT_EQ(engine.window_rolls(), 0u);

  // The snapshot carries the VM with its streamed metadata and samples —
  // but the deletion sits at exactly the cutoff, inside the tick that is
  // not yet complete, so the epoch-aligned snapshot excludes it (exactly
  // as a batch import of the event prefix would).
  const auto snap = engine.snapshot_trace();
  ASSERT_EQ(snap->vms().size(), 1u);
  EXPECT_EQ(snap->vms()[0].created, 0);
  EXPECT_EQ(snap->vms()[0].deleted, kNoEnd);
  EXPECT_DOUBLE_EQ(snap->vms()[0].cores, 4);
  ASSERT_NE(snap->vms()[0].utilization, nullptr);
  EXPECT_DOUBLE_EQ(snap->vms()[0].utilization->at(kHour), 0.5);

  // A later event completes that tick and the deletion becomes visible —
  // while the new creation, itself mid-tick, stays out of the snapshot.
  engine.ingest_line("vm,1,1,,public,third-party,0,1,2,16,2,8,39600");
  EXPECT_EQ(engine.epoch(), static_cast<std::size_t>(39600 / grid.step));
  EXPECT_EQ(engine.resident_vms(), 2u);
  const auto later = engine.snapshot_trace();
  ASSERT_EQ(later->vms().size(), 1u);
  EXPECT_EQ(later->vms()[0].deleted, 10 * kHour);
}

TEST_F(ServeEngineTest, MalformedAndOutOfOrderInputThrows) {
  ServeEngine engine;
  const auto lines = stream_lines();
  for (const auto& line : lines) engine.ingest_line(line);

  EXPECT_THROW(engine.ingest_line("flux,1,2"), CheckError);
  EXPECT_THROW(engine.ingest_line("sample,99,600,0.5"), CheckError);
  EXPECT_THROW(engine.ingest_line("del,99,600"), CheckError);
  EXPECT_THROW(engine.ingest_line("vm,7,0"), CheckError);

  // Events must be fed before a second grid line, and timestamps must
  // never regress.
  ServeEngine strict;
  strict.ingest_line("cloudlens-stream,v1");
  strict.ingest_line("grid,0,300,2016");
  for (const auto& line : lines) {
    if (line.rfind("topo,", 0) == 0) strict.ingest_line(line);
  }
  strict.ingest_line("vm,0,0,,private,first-party,0,0,0,0,4,16,600");
  EXPECT_THROW(
      strict.ingest_line("vm,1,0,,private,first-party,0,0,0,0,4,16,300"),
      CheckError);
  // Duplicate creation of a live VM id is rejected.
  EXPECT_THROW(
      strict.ingest_line("vm,0,0,,private,first-party,0,0,0,0,4,16,600"),
      CheckError);
  // Samples must land on the declared grid.
  EXPECT_THROW(strict.ingest_line("sample,0,601,0.5"), CheckError);
}

TEST_F(ServeEngineTest, StatsCheckpointAndUnknownQueryEdges) {
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub,
             test::first_node(topo_, CloudType::kPrivate), 4, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));
  ServeEngine engine;
  for (const auto& line : stream_lines()) engine.ingest_line(line);

  const auto stats = engine.query("stats");
  EXPECT_NE(stats.find("events="), std::string::npos);
  EXPECT_NE(stats.find("vms=1"), std::string::npos);
  EXPECT_THROW(engine.query("no-such-kind"), CheckError);
  // Checkpointing is disabled without a directory.
  EXPECT_THROW(engine.query("checkpoint"), CheckError);
  EXPECT_THROW(engine.checkpoint(), CheckError);
}

TEST_F(ServeEngineTest, QueriesAtUnchangedEpochReuseTheSnapshot) {
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub,
             test::first_node(topo_, CloudType::kPrivate), 4, 0, kNoEnd,
             std::make_shared<ConstantUtilization>(0.5));
  obs::MetricsRegistry metrics;
  metrics.set_enabled(true);
  ServeOptions options;
  options.metrics = &metrics;
  ServeEngine engine(options);
  for (const auto& line : stream_lines()) engine.ingest_line(line);

  const auto first = engine.query("shares,private");
  const auto builds = metrics.snapshot().counter("serve.snapshots_built");
  const auto second = engine.query("shares,private");
  EXPECT_EQ(first, second);
  // Same epoch: the snapshot (and the rendered result) are reused.
  EXPECT_EQ(metrics.snapshot().counter("serve.snapshots_built"), builds);
  EXPECT_GT(metrics.snapshot().counter("serve.snapshot_reuses"), 0u);
}

}  // namespace
}  // namespace cloudlens::serve
