#include "stats/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace cloudlens::stats {
namespace {

/// O(n^2) reference DFT.
std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& in) {
  const std::size_t n = in.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0, 0};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi * double(k) * double(j) /
                           double(n);
      acc += in[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(FftTest, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(FftTest, MatchesNaiveDft) {
  cloudlens::Rng rng(1);
  std::vector<std::complex<double>> data(64);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto expected = naive_dft(data);
  auto actual = data;
  fft_inplace(actual, false);
  for (std::size_t k = 0; k < data.size(); ++k) {
    EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9);
    EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9);
  }
}

TEST(FftTest, InverseRoundTrip) {
  cloudlens::Rng rng(2);
  std::vector<std::complex<double>> data(128);
  for (auto& x : data) x = {rng.uniform(), rng.uniform()};
  auto copy = data;
  fft_inplace(copy, false);
  fft_inplace(copy, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-10);
    EXPECT_NEAR(copy[i].imag(), data[i].imag(), 1e-10);
  }
}

TEST(FftTest, NonPowerOfTwoThrows) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fft_inplace(data, false), cloudlens::CheckError);
}

TEST(FftTest, ParsevalHolds) {
  cloudlens::Rng rng(3);
  std::vector<std::complex<double>> data(256);
  double time_energy = 0;
  for (auto& x : data) {
    x = {rng.normal(), 0.0};
    time_energy += std::norm(x);
  }
  auto freq = data;
  fft_inplace(freq, false);
  double freq_energy = 0;
  for (const auto& x : freq) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / double(data.size()), time_energy, 1e-6);
}

TEST(PeriodogramTest, PeakAtPlantedFrequency) {
  // 512 samples, 8 cycles -> padded size 512, peak at bin 8.
  std::vector<double> xs(512);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = std::sin(2.0 * std::numbers::pi * 8.0 * double(i) / 512.0);
  const auto p = periodogram(xs);
  std::size_t argmax = 1;
  for (std::size_t k = 1; k < p.size(); ++k) {
    if (p[k] > p[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 8u);
}

TEST(PeriodogramTest, MeanRemovedNoDcPeak) {
  std::vector<double> xs(128, 5.0);  // constant series
  const auto p = periodogram(xs);
  for (double v : p) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  cloudlens::Rng rng(4);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.normal();
  const auto acf = autocorrelation(xs);
  EXPECT_NEAR(acf[0], 1.0, 1e-9);
}

TEST(AutocorrelationTest, SinusoidPeaksAtPeriod) {
  const std::size_t period = 24;
  std::vector<double> xs(24 * 14);
  for (std::size_t i = 0; i < xs.size(); ++i)
    xs[i] = std::sin(2.0 * std::numbers::pi * double(i) / double(period));
  const auto acf = autocorrelation(xs);
  EXPECT_GT(acf[period], 0.9);
  EXPECT_LT(acf[period / 2], -0.8);
}

TEST(AutocorrelationTest, WhiteNoiseDecorrelates) {
  cloudlens::Rng rng(5);
  std::vector<double> xs(4096);
  for (auto& x : xs) x = rng.normal();
  const auto acf = autocorrelation(xs);
  for (std::size_t lag = 1; lag < 50; ++lag)
    EXPECT_NEAR(acf[lag], 0.0, 0.08);
}

TEST(AutocorrelationTest, ConstantSeriesIsDelta) {
  std::vector<double> xs(64, 3.0);
  const auto acf = autocorrelation(xs);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  for (std::size_t lag = 1; lag < acf.size(); ++lag)
    EXPECT_DOUBLE_EQ(acf[lag], 0.0);
}

}  // namespace
}  // namespace cloudlens::stats
