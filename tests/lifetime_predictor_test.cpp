#include "analysis/lifetime_predictor.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"

namespace cloudlens::analysis {
namespace {

TEST(LifetimePredictorTest, SurvivalStepFunction) {
  const LifetimePredictor p({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(p.survival(0), 1.0);
  EXPECT_DOUBLE_EQ(p.survival(10), 0.75);
  EXPECT_DOUBLE_EQ(p.survival(25), 0.5);
  EXPECT_DOUBLE_EQ(p.survival(40), 0.0);
}

TEST(LifetimePredictorTest, ExpectedRemaining) {
  const LifetimePredictor p({10, 20, 30, 40});
  // At age 0: mean lifetime = 25.
  EXPECT_DOUBLE_EQ(p.expected_remaining(0), 25.0);
  // At age 15: survivors {20, 30, 40}, mean remaining = (5+15+25)/3 = 15.
  EXPECT_DOUBLE_EQ(p.expected_remaining(15), 15.0);
  // At age 35: only 40 survives, remaining = 5.
  EXPECT_DOUBLE_EQ(p.expected_remaining(35), 5.0);
}

TEST(LifetimePredictorTest, TailFallbackIsAge) {
  const LifetimePredictor p({10, 20});
  // Beyond every observed lifetime: Lindy fallback, remaining = age.
  EXPECT_DOUBLE_EQ(p.expected_remaining(100), 100.0);
  EXPECT_DOUBLE_EQ(p.median_remaining(100), 100.0);
}

TEST(LifetimePredictorTest, MedianRemaining) {
  const LifetimePredictor p({10, 20, 30, 40});
  // At age 15: survivors {20, 30, 40}, median = 30, remaining = 15.
  EXPECT_DOUBLE_EQ(p.median_remaining(15), 15.0);
}

TEST(LifetimePredictorTest, HeavyTailIncreasesRemaining) {
  // With a heavy tail, conditional remaining lifetime *grows* with age —
  // exactly why lifetime-aware migration pays off.
  std::vector<double> lifetimes;
  for (int i = 0; i < 900; ++i) lifetimes.push_back(600);           // 10 min
  for (int i = 0; i < 100; ++i) lifetimes.push_back(7 * 86400.0);   // 7 days
  const LifetimePredictor p(std::move(lifetimes));
  EXPECT_GT(p.expected_remaining(3600), p.expected_remaining(0));
}

TEST(LifetimePredictorTest, RejectsEmptyAndNegative) {
  EXPECT_THROW(LifetimePredictor({}), CheckError);
  EXPECT_THROW(LifetimePredictor({5, -1}), CheckError);
}

TEST(LifetimePredictorTest, FitFromTrace) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPublic);
  fx.add_vm(CloudType::kPublic, fx.public_sub, node, 1, 0, kHour);
  fx.add_vm(CloudType::kPublic, fx.public_sub, node, 1, 0, 3 * kHour);
  fx.add_vm(CloudType::kPublic, fx.public_sub, node, 1, 0, kNoEnd);  // alive
  const auto p = LifetimePredictor::fit(fx.trace, CloudType::kPublic);
  EXPECT_EQ(p.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(p.survival(double(2 * kHour)), 0.5);
}

TEST(LifetimePredictorTest, FitThrowsWithoutEndedVms) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  EXPECT_THROW(LifetimePredictor::fit(fx.trace, CloudType::kPublic),
               CheckError);
}

}  // namespace
}  // namespace cloudlens::analysis
