// Telemetry panel suite: lifecycle (lazy build, add_vm/set_vm_deleted
// invalidation, enable/disable), row semantics (model-less VMs, partial
// lifetimes), the batched sample() == at() bit-identity contract, the
// hourly companion view, concurrent first-build publication (exercised
// under TSan in CI), and the fused-vs-naive Pearson kernel.
#include "cloudsim/telemetry_panel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "cloudsim/trace_io.h"
#include "stats/correlation.h"
#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens {
namespace {

using test::TraceFixture;

std::shared_ptr<const UtilizationModel> diurnal(std::uint64_t seed) {
  return std::make_shared<workloads::DiurnalUtilization>(
      workloads::DiurnalUtilization::Params{}, seed);
}

TEST(TelemetryPanelTest, LazyBuildAndStablePointer) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  f.add_vm(CloudType::kPrivate, f.private_sub, node, 4, 0, kNoEnd,
           diurnal(7));

  const TelemetryPanel* panel = f.trace.telemetry_panel();
  ASSERT_NE(panel, nullptr);
  EXPECT_EQ(panel->vm_count(), 1u);
  EXPECT_EQ(panel->tick_count(), f.trace.telemetry_grid().count);
  // Repeated calls return the same materialized panel.
  EXPECT_EQ(panel, f.trace.telemetry_panel());
  EXPECT_GT(panel->memory_bytes(), 0u);
}

TEST(TelemetryPanelTest, AddVmInvalidatesPanel) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  f.add_vm(CloudType::kPrivate, f.private_sub, node, 4, 0, kNoEnd,
           diurnal(7));
  const TelemetryPanel* before = f.trace.telemetry_panel();
  ASSERT_EQ(before->vm_count(), 1u);

  const VmId added = f.add_vm(CloudType::kPrivate, f.private_sub, node, 2, 0,
                              kNoEnd, diurnal(8));
  const TelemetryPanel* after = f.trace.telemetry_panel();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->vm_count(), 2u);
  // The rebuilt panel covers the new VM with a fully evaluated row.
  const auto row = after->row(added);
  ASSERT_EQ(row.size(), f.trace.telemetry_grid().count);
  EXPECT_EQ(row[0], f.trace.vm(added).utilization->at(
                        f.trace.telemetry_grid().start));
}

// Regression (satellite): set_vm_deleted used to leave the lazy caches
// intact, so analyses after failure injection read stale rows for the
// killed VMs.
TEST(TelemetryPanelTest, SetVmDeletedInvalidatesPanel) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const TimeGrid& grid = f.trace.telemetry_grid();
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  const VmId id = f.add_vm(CloudType::kPrivate, f.private_sub, node, 4, 0,
                           kNoEnd, diurnal(7));

  const TelemetryPanel* before = f.trace.telemetry_panel();
  const SimTime cut = grid.start + 2 * kDay;
  const std::size_t cut_index = grid.index_of(cut);
  ASSERT_NE(before->row(id)[cut_index], 0.0)
      << "test needs a non-zero sample at the cut point";

  f.trace.set_vm_deleted(id, cut);
  const TelemetryPanel* after = f.trace.telemetry_panel();
  ASSERT_NE(after, nullptr);
  const auto row = after->row(id);
  // Dead from the cut onwards; alive bits unchanged before it.
  for (std::size_t i = cut_index; i < grid.count; ++i)
    ASSERT_EQ(row[i], 0.0) << "tick " << i;
  EXPECT_EQ(row[0], f.trace.vm(id).utilization->at(grid.start));
  // Derived telemetry reflects the shortened life too.
  EXPECT_EQ(f.trace.vm_utilization(id, grid).value_at(cut), 0.0);
}

TEST(TelemetryPanelTest, DisableReturnsNullAndFallbackMatches) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const TimeGrid& grid = f.trace.telemetry_grid();
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  const VmId id = f.add_vm(CloudType::kPrivate, f.private_sub, node, 4,
                           grid.start + kDay, grid.start + 4 * kDay,
                           diurnal(21));

  const TelemetryPanel* panel = f.trace.telemetry_panel();
  ASSERT_NE(panel, nullptr);
  std::vector<double> cached(panel->row(id).begin(), panel->row(id).end());

  f.trace.set_telemetry_panel_enabled(false);
  EXPECT_EQ(f.trace.telemetry_panel(), nullptr);
  EXPECT_FALSE(f.trace.telemetry_panel_enabled());

  // The scratch fallback goes through the same fill kernel: identical bits.
  std::vector<double> scratch;
  const auto row = vm_telemetry_row(f.trace, nullptr, id, grid, scratch);
  ASSERT_EQ(row.size(), cached.size());
  for (std::size_t i = 0; i < row.size(); ++i)
    ASSERT_EQ(row[i], cached[i]) << "tick " << i;

  f.trace.set_telemetry_panel_enabled(true);
  ASSERT_NE(f.trace.telemetry_panel(), nullptr);
}

TEST(TelemetryPanelTest, EmptyTrace) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const TelemetryPanel* panel = f.trace.telemetry_panel();
  ASSERT_NE(panel, nullptr);
  EXPECT_EQ(panel->vm_count(), 0u);
  EXPECT_EQ(panel->memory_bytes(), 0u);
}

TEST(TelemetryPanelTest, ModelLessVmHasZeroRow) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  const VmId id = f.add_vm(CloudType::kPrivate, f.private_sub, node, 4, 0,
                           kNoEnd, nullptr);
  const TelemetryPanel* panel = f.trace.telemetry_panel();
  for (const double v : panel->row(id)) ASSERT_EQ(v, 0.0);
}

TEST(TelemetryPanelTest, PartialLifetimeRowZeroOutsideLife) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const TimeGrid& grid = f.trace.telemetry_grid();
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  // Mid-window life, deliberately not aligned to the grid step.
  const SimTime created = grid.start + kDay + 7 * kMinute;
  const SimTime deleted = grid.start + 3 * kDay + 11 * kMinute;
  const VmId id = f.add_vm(CloudType::kPrivate, f.private_sub, node, 4,
                           created, deleted, diurnal(42));

  const TelemetryPanel* panel = f.trace.telemetry_panel();
  const auto row = panel->row(id);
  const auto& vm = f.trace.vm(id);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const SimTime t = grid.at(i);
    if (vm.alive_at(t)) {
      ASSERT_EQ(row[i], vm.utilization->at(t)) << "tick " << i;
    } else {
      ASSERT_EQ(row[i], 0.0) << "tick " << i;
    }
  }
}

TEST(TelemetryPanelTest, HourlyRowMatchesHourlyMeanBitwise) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const TimeGrid& grid = f.trace.telemetry_grid();
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  const VmId full = f.add_vm(CloudType::kPrivate, f.private_sub, node, 4, 0,
                             kNoEnd, diurnal(3));
  const VmId partial = f.add_vm(
      CloudType::kPrivate, f.private_sub, node, 2, grid.start + 36 * kHour,
      grid.start + 90 * kHour,
      std::make_shared<workloads::HourlyPeakUtilization>(
          workloads::HourlyPeakUtilization::Params{}, 5));

  const TelemetryPanel* panel = f.trace.telemetry_panel();
  ASSERT_GT(panel->hourly_grid().count, 0u);
  for (const VmId id : {full, partial}) {
    const auto hourly = panel->hourly_row(id);
    const auto reference = f.trace.vm_utilization(id, grid).hourly_mean();
    ASSERT_EQ(hourly.size(), reference.size());
    for (std::size_t h = 0; h < hourly.size(); ++h)
      ASSERT_EQ(hourly[h], reference[h]) << "hour " << h;
  }
}

TEST(TelemetryPanelTest, ConcurrentFirstBuildPublishesOnePanel) {
  const Topology topo = test::tiny_topology();
  TraceFixture f(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  for (int i = 0; i < 16; ++i)
    f.add_vm(CloudType::kPrivate, f.private_sub, node, 2, 0, kNoEnd,
             diurnal(100 + static_cast<std::uint64_t>(i)));

  constexpr std::size_t kReaders = 8;
  std::vector<const TelemetryPanel*> seen(kReaders, nullptr);
  std::vector<double> sums(kReaders, 0.0);
  {
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (std::size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        // Every reader races the lazy first build, then immediately reads
        // through the published rows (data race here => TSan report).
        const TelemetryPanel* panel = f.trace.telemetry_panel();
        seen[r] = panel;
        double sum = 0;
        const VmId vm(static_cast<std::uint32_t>(r));
        for (const double v : panel->row(vm)) sum += v;
        sums[r] = sum;
      });
    }
    for (auto& t : readers) t.join();
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    ASSERT_NE(seen[r], nullptr);
    EXPECT_EQ(seen[r], seen[0]);
    EXPECT_GT(sums[r], 0.0);
  }
}

// The batched sample() contract: bit-identical to the per-tick at() loop,
// for every concrete model, on the canonical analysis grid and on awkward
// grids (offset start, step that doesn't divide an hour) that force the
// models' batch fast paths to bail out or re-anchor.
class SampleContractTest : public ::testing::Test {
 protected:
  static std::vector<std::shared_ptr<const UtilizationModel>> models() {
    using namespace workloads;
    std::vector<std::shared_ptr<const UtilizationModel>> out;
    out.push_back(std::make_shared<ConstantUtilization>(0.37));
    out.push_back(std::make_shared<DiurnalUtilization>(
        DiurnalUtilization::Params{}, 11));
    DiurnalUtilization::Params tz;
    tz.tz_offset_hours = -8;
    out.push_back(std::make_shared<DiurnalUtilization>(tz, 12));
    out.push_back(std::make_shared<StableUtilization>(
        StableUtilization::Params{}, 13));
    out.push_back(std::make_shared<IrregularUtilization>(
        IrregularUtilization::Params{}, 14));
    out.push_back(std::make_shared<HourlyPeakUtilization>(
        HourlyPeakUtilization::Params{}, 15));
    // Sampled model whose source grid differs from the query grids.
    const TimeGrid src{kDay, kTelemetryInterval, 3 * 12 * 24};
    std::vector<double> samples(src.count);
    for (std::size_t i = 0; i < src.count; ++i)
      samples[i] = 0.5 + 0.4 * std::sin(static_cast<double>(i) / 17.0);
    out.push_back(std::make_shared<SampledUtilization>(src, samples));
    return out;
  }

  static void expect_sample_matches_at(const UtilizationModel& model,
                                       const TimeGrid& grid) {
    std::vector<double> batched(grid.count);
    model.sample(grid, batched);
    for (std::size_t i = 0; i < grid.count; ++i)
      ASSERT_EQ(batched[i], model.at(grid.at(i)))
          << model.kind() << " tick " << i;
  }
};

TEST_F(SampleContractTest, BitIdenticalOnWeekGrid) {
  const TimeGrid grid = week_telemetry_grid();
  for (const auto& model : models()) expect_sample_matches_at(*model, grid);
}

TEST_F(SampleContractTest, BitIdenticalOnAwkwardGrids) {
  // Offset, short, and hour-misaligned grids exercise the batch loops'
  // anchor/window bookkeeping and the generic fallback.
  const TimeGrid grids[] = {
      {3 * kHour + 5 * kMinute, kTelemetryInterval, 500},  // offset start
      {-2 * kDay, kTelemetryInterval, 700},                // negative times
      {kHour, 7 * kMinute, 300},   // step doesn't divide an hour
      {0, 30 * kMinute, 200},      // coarse step
      {11 * kMinute, kMinute, 90}  // fine step
  };
  for (const auto& model : models())
    for (const TimeGrid& grid : grids) expect_sample_matches_at(*model, grid);
}

// Fused single-pass Pearson vs the two-pass reference, over correlated,
// anti-correlated, noisy, constant, and short inputs.
TEST(PearsonFusedTest, MatchesTwoPassReference) {
  const auto noise = [](std::uint64_t k) {
    return workloads::hash_uniform(99, static_cast<std::int64_t>(k));
  };
  for (const std::size_t n : {2u, 3u, 17u, 168u, 2016u}) {
    std::vector<double> x(n), same(n), inverse(n), noisy(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = std::sin(static_cast<double>(i) / 9.0) + 0.3 * noise(i);
      same[i] = 2.5 * x[i] + 1.0;
      inverse[i] = -x[i];
      noisy[i] = noise(1000 + i);
    }
    for (const auto& y : {same, inverse, noisy}) {
      const double fused = stats::pearson_fused(x, y);
      const double reference = stats::pearson(x, y);
      EXPECT_NEAR(fused, reference, 1e-12) << "n=" << n;
      EXPECT_LE(std::abs(fused), 1.0);
    }
  }
  // Exact invariants the analyses rely on.
  std::vector<double> x{0.1, 0.4, 0.2, 0.9};
  EXPECT_EQ(stats::pearson_fused(x, x), 1.0);
  std::vector<double> flat(4, 0.5);
  EXPECT_EQ(stats::pearson_fused(x, flat), 0.0);
  std::vector<double> one{1.0};
  EXPECT_EQ(stats::pearson_fused(one, one), 0.0);
}

}  // namespace
}  // namespace cloudlens
