#include "common/table.h"

#include <gtest/gtest.h>

#include "common/ascii_chart.h"
#include "common/check.h"

namespace cloudlens {
namespace {

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row().add("a").add(std::int64_t{1});
  t.row().add("longer").add(std::int64_t{22});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("a       1"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(TextTableTest, DoubleCellUsesPrecision) {
  TextTable t({"x"});
  t.row().add(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

TEST(TextTableTest, AddWithoutRowThrows) {
  TextTable t({"x"});
  EXPECT_THROW(t.add("boom"), CheckError);
}

TEST(TextTableTest, TooManyCellsThrows) {
  TextTable t({"x"});
  t.row().add("a");
  EXPECT_THROW(t.add("b"), CheckError);
}

TEST(TextTableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), CheckError);
}

TEST(TextTableTest, CsvBasic) {
  TextTable t({"a", "b"});
  t.row().add("1").add("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t({"a"});
  t.row().add("x,y");
  t.row().add("q\"uote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(TextTableTest, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().add("1");
  t.row().add("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiChartTest, RenderLinesContainsGlyphAndLegend) {
  const std::vector<std::pair<std::string, std::vector<double>>> series = {
      {"up", {0, 1, 2, 3, 4}}};
  const std::string s = render_lines(series);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("up"), std::string::npos);
}

TEST(AsciiChartTest, RenderLinesTwoSeriesTwoGlyphs) {
  const std::vector<std::pair<std::string, std::vector<double>>> series = {
      {"a", {0, 1}}, {"b", {1, 0}}};
  const std::string s = render_lines(series);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
}

TEST(AsciiChartTest, RenderLinesConstantSeriesNoCrash) {
  const std::string s = render_lines({{"flat", {5, 5, 5}}});
  EXPECT_FALSE(s.empty());
}

TEST(AsciiChartTest, RenderLinesFixedRange) {
  ChartOptions opts;
  opts.fixed_y_range = true;
  opts.y_min = 0;
  opts.y_max = 1;
  const std::string s = render_lines({{"s", {0.5, 0.5}}}, opts);
  EXPECT_NE(s.find("1.00"), std::string::npos);
  EXPECT_NE(s.find("0.00"), std::string::npos);
}

TEST(AsciiChartTest, RenderBarsProportional) {
  const std::string s =
      render_bars({{"big", 10.0}, {"small", 1.0}}, 20, "title");
  EXPECT_NE(s.find("title"), std::string::npos);
  // The big bar renders more '#' than the small one.
  const auto big_pos = s.find("big");
  const auto small_pos = s.find("small");
  ASSERT_NE(big_pos, std::string::npos);
  ASSERT_NE(small_pos, std::string::npos);
  const auto count_hashes = [&](std::size_t from) {
    std::size_t n = 0;
    for (std::size_t i = from; i < s.size() && s[i] != '\n'; ++i)
      if (s[i] == '#') ++n;
    return n;
  };
  EXPECT_GT(count_hashes(big_pos), count_hashes(small_pos));
}

TEST(AsciiChartTest, RenderBoxesShowsMedianMarker) {
  BoxSpec box;
  box.label = "x";
  box.whisker_lo = 0;
  box.q1 = 1;
  box.median = 2;
  box.q3 = 3;
  box.whisker_hi = 4;
  const std::string s = render_boxes({box});
  EXPECT_NE(s.find('M'), std::string::npos);
  EXPECT_NE(s.find("med=2.000"), std::string::npos);
}

TEST(AsciiChartTest, RenderHeatmapDimensions) {
  const std::vector<std::vector<double>> grid = {{0, 1}, {1, 0}};
  const std::string s = render_heatmap(grid, "hm", "x", "y");
  EXPECT_NE(s.find("hm"), std::string::npos);
  EXPECT_NE(s.find('@'), std::string::npos);  // max cells use densest glyph
}

TEST(AsciiChartTest, EmptyInputsThrow) {
  EXPECT_THROW(render_lines({}), CheckError);
  EXPECT_THROW(render_bars({}), CheckError);
  EXPECT_THROW(render_boxes({}), CheckError);
  EXPECT_THROW(render_heatmap({}), CheckError);
}

}  // namespace
}  // namespace cloudlens
