// Binary snapshot round-trip tests: every section reconstructs exactly
// (doubles as bit patterns), shared models stay shared, custom models
// round-trip through the pattern codec, and malformed containers are
// rejected rather than misread.
#include "cloudsim/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "cloudsim/trace_io.h"
#include "common/check.h"
#include "testutil.h"
#include "workloads/generator.h"
#include "workloads/pattern_snapshot.h"

namespace cloudlens {
namespace {

using test::TraceFixture;
using test::tiny_topology;

std::string save_to_string(const Topology& topo, const TraceStore& trace,
                           const SnapshotWriteOptions& options = {}) {
  std::ostringstream out(std::ios::binary);
  save_trace_snapshot(topo, trace, out, options);
  return out.str();
}

LoadedSnapshot load_from_string(const std::string& bytes,
                                const SnapshotModelCodec* codec = nullptr) {
  std::istringstream in(bytes, std::ios::binary);
  return load_trace_snapshot(in, codec);
}

TEST(SnapshotCodec, PrimitivesRoundTripBitExact) {
  std::string buf;
  snapshot_codec::append_u8(buf, 0xAB);
  snapshot_codec::append_u32(buf, 0xDEADBEEFu);
  snapshot_codec::append_u64(buf, 0x0123456789ABCDEFull);
  snapshot_codec::append_i64(buf, -42);
  snapshot_codec::append_f64(buf, -0.0);
  snapshot_codec::append_f64(buf, std::nan(""));
  snapshot_codec::append_string(buf, "hello");

  snapshot_codec::Reader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(SnapshotCodec, ReaderRejectsTruncation) {
  std::string buf;
  snapshot_codec::append_u32(buf, 7);
  snapshot_codec::Reader r(buf);
  r.u32();
  EXPECT_THROW(r.u8(), CheckError);
}

class SnapshotHandBuiltTest : public ::testing::Test {
 protected:
  SnapshotHandBuiltTest() : topo_(tiny_topology()), fx_(topo_) {
    shared_model_ = std::make_shared<ConstantUtilization>(0.25);
    std::vector<double> samples(fx_.trace.telemetry_grid().count);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      samples[i] = 0.1 + 0.001 * static_cast<double>(i);
    }
    sampled_model_ = std::make_shared<SampledUtilization>(
        fx_.trace.telemetry_grid(), std::move(samples));

    const auto nodes = topo_.nodes();
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, nodes[0].id, 4, 0,
               2 * kDay, shared_model_);
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, nodes[1].id, 8, kHour,
               kNoEnd, shared_model_);
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, nodes[16].id, 2, kDay,
               3 * kDay, sampled_model_);
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, nodes[17].id, 1, 0, kHour,
               nullptr);
  }

  Topology topo_;
  TraceFixture fx_;
  std::shared_ptr<ConstantUtilization> shared_model_;
  std::shared_ptr<SampledUtilization> sampled_model_;
};

TEST_F(SnapshotHandBuiltTest, RoundTripsEverySection) {
  const auto loaded = load_from_string(save_to_string(topo_, fx_.trace));

  const Topology& t2 = *loaded.topology;
  ASSERT_EQ(t2.regions().size(), topo_.regions().size());
  for (std::size_t i = 0; i < topo_.regions().size(); ++i) {
    EXPECT_EQ(t2.regions()[i].name, topo_.regions()[i].name);
    EXPECT_EQ(t2.regions()[i].tz_offset_hours,
              topo_.regions()[i].tz_offset_hours);
  }
  ASSERT_EQ(t2.clusters().size(), topo_.clusters().size());
  for (std::size_t i = 0; i < topo_.clusters().size(); ++i) {
    EXPECT_EQ(t2.clusters()[i].cloud, topo_.clusters()[i].cloud);
    EXPECT_EQ(t2.clusters()[i].node_sku.name,
              topo_.clusters()[i].node_sku.name);
  }
  EXPECT_EQ(t2.racks().size(), topo_.racks().size());
  EXPECT_EQ(t2.nodes().size(), topo_.nodes().size());

  const TraceStore& trace2 = *loaded.trace;
  EXPECT_EQ(trace2.telemetry_grid().start, fx_.trace.telemetry_grid().start);
  EXPECT_EQ(trace2.telemetry_grid().step, fx_.trace.telemetry_grid().step);
  EXPECT_EQ(trace2.telemetry_grid().count, fx_.trace.telemetry_grid().count);

  ASSERT_EQ(trace2.subscriptions().size(), fx_.trace.subscriptions().size());
  for (std::size_t i = 0; i < trace2.subscriptions().size(); ++i) {
    EXPECT_EQ(trace2.subscriptions()[i].cloud,
              fx_.trace.subscriptions()[i].cloud);
    EXPECT_EQ(trace2.subscriptions()[i].party,
              fx_.trace.subscriptions()[i].party);
  }

  ASSERT_EQ(trace2.vms().size(), fx_.trace.vms().size());
  for (std::size_t i = 0; i < trace2.vms().size(); ++i) {
    const VmRecord& a = fx_.trace.vms()[i];
    const VmRecord& b = trace2.vms()[i];
    EXPECT_EQ(b.subscription, a.subscription);
    EXPECT_EQ(b.cloud, a.cloud);
    EXPECT_EQ(b.party, a.party);
    EXPECT_EQ(b.region, a.region);
    EXPECT_EQ(b.cluster, a.cluster);
    EXPECT_EQ(b.rack, a.rack);
    EXPECT_EQ(b.node, a.node);
    EXPECT_EQ(b.cores, a.cores);
    EXPECT_EQ(b.memory_gb, a.memory_gb);
    EXPECT_EQ(b.created, a.created);
    EXPECT_EQ(b.deleted, a.deleted);
    EXPECT_EQ(b.utilization == nullptr, a.utilization == nullptr);
  }
}

TEST_F(SnapshotHandBuiltTest, SharedModelsStaySharedAndExact) {
  const auto loaded = load_from_string(save_to_string(topo_, fx_.trace));
  const auto& vms = loaded.trace->vms();
  // VMs 0 and 1 shared one ConstantUtilization; the round trip must keep
  // one instance, not clone per VM.
  ASSERT_NE(vms[0].utilization, nullptr);
  EXPECT_EQ(vms[0].utilization.get(), vms[1].utilization.get());
  EXPECT_EQ(vms[0].utilization->at(kHour), 0.25);
  // The sampled model reproduces every stored tick bit-for-bit.
  const TimeGrid& grid = fx_.trace.telemetry_grid();
  for (std::size_t i = 0; i < grid.count; i += 97) {
    EXPECT_EQ(vms[2].utilization->at(grid.at(i)),
              sampled_model_->at(grid.at(i)));
  }
}

TEST_F(SnapshotHandBuiltTest, SaveIsDeterministic) {
  EXPECT_EQ(save_to_string(topo_, fx_.trace), save_to_string(topo_, fx_.trace));
}

TEST(SnapshotContainer, RejectsBadMagicVersionAndTruncation) {
  Topology topo = tiny_topology();
  TraceFixture fx(topo);
  std::string bytes = save_to_string(topo, fx.trace);

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(load_from_string(bad_magic), CheckError);

  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0xEE);
  EXPECT_THROW(load_from_string(bad_version), CheckError);

  const std::string truncated = bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(load_from_string(truncated), CheckError);

  EXPECT_THROW(load_from_string(std::string()), CheckError);
}

class SnapshotGeneratedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::ScenarioOptions options;
    options.scale = 0.03;
    options.seed = 17;
    scenario_ = new workloads::Scenario(workloads::make_scenario(options));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static workloads::Scenario* scenario_;
};

workloads::Scenario* SnapshotGeneratedTest::scenario_ = nullptr;

TEST_F(SnapshotGeneratedTest, PatternModelsRoundTripBitExactEverywhere) {
  SnapshotWriteOptions options;
  options.model_codec = &workloads::pattern_snapshot_codec();
  const std::string bytes =
      save_to_string(*scenario_->topology, *scenario_->trace, options);
  const auto loaded =
      load_from_string(bytes, &workloads::pattern_snapshot_codec());

  const auto& before = scenario_->trace->vms();
  const auto& after = loaded.trace->vms();
  ASSERT_EQ(after.size(), before.size());
  // Parametric models must agree at *arbitrary* times (including
  // off-grid ones), not just stored ticks — that is what makes
  // snapshot-loaded analyses byte-identical to fresh generation.
  const SimTime probes[] = {0,           kMinute + 7, kHour + 13,
                            kDay - 1,    3 * kDay,    kWeek - kMinute};
  for (std::size_t i = 0; i < before.size(); i += 11) {
    if (before[i].utilization == nullptr) {
      EXPECT_EQ(after[i].utilization, nullptr);
      continue;
    }
    ASSERT_NE(after[i].utilization, nullptr);
    EXPECT_EQ(after[i].utilization->kind(), before[i].utilization->kind());
    for (const SimTime t : probes) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(after[i].utilization->at(t)),
                std::bit_cast<std::uint64_t>(before[i].utilization->at(t)))
          << "vm " << i << " at t=" << t;
    }
  }
}

TEST_F(SnapshotGeneratedTest, WithoutCodecDegradesToGridExactSamples) {
  // No codec on either side: pattern models fall back to sampled series
  // over the telemetry grid — exact at every grid tick by construction.
  const std::string bytes =
      save_to_string(*scenario_->topology, *scenario_->trace);
  const auto loaded = load_from_string(bytes);
  const TimeGrid& grid = scenario_->trace->telemetry_grid();
  const auto& before = scenario_->trace->vms();
  const auto& after = loaded.trace->vms();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); i += 101) {
    if (before[i].utilization == nullptr) continue;
    for (std::size_t g = 0; g < grid.count; g += 499) {
      EXPECT_EQ(after[i].utilization->at(grid.at(g)),
                before[i].utilization->at(grid.at(g)));
    }
  }
}

TEST_F(SnapshotGeneratedTest, PanelSectionRoundTripsBitIdentical) {
  const TelemetryPanel* panel = scenario_->trace->telemetry_panel();
  ASSERT_NE(panel, nullptr);

  SnapshotWriteOptions options;
  options.include_panel = true;
  options.model_codec = &workloads::pattern_snapshot_codec();
  const std::string bytes =
      save_to_string(*scenario_->topology, *scenario_->trace, options);
  const auto loaded =
      load_from_string(bytes, &workloads::pattern_snapshot_codec());
  ASSERT_TRUE(loaded.panel_loaded);

  const TelemetryPanel* panel2 = loaded.trace->telemetry_panel();
  ASSERT_NE(panel2, nullptr);
  ASSERT_EQ(panel2->vm_count(), panel->vm_count());
  for (std::size_t v = 0; v < panel->vm_count(); v += 37) {
    const VmId id(static_cast<VmId::underlying>(v));
    const auto a = panel->row(id);
    const auto b = panel2->row(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 53) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]));
    }
    const auto ha = panel->hourly_row(id);
    const auto hb = panel2->hourly_row(id);
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(ha[i]),
                std::bit_cast<std::uint64_t>(hb[i]));
    }
  }
}

TEST_F(SnapshotGeneratedTest, PanelOnlySnapshotRoundTrips) {
  const TelemetryPanel* panel = scenario_->trace->telemetry_panel();
  ASSERT_NE(panel, nullptr);
  std::ostringstream out(std::ios::binary);
  save_panel_snapshot(*panel, out);
  std::istringstream in(out.str(), std::ios::binary);
  const auto panel2 = load_panel_snapshot(in);
  ASSERT_EQ(panel2->vm_count(), panel->vm_count());
  ASSERT_EQ(panel2->grid().count, panel->grid().count);
  for (std::size_t v = 0; v < panel->vm_count(); v += 61) {
    const VmId id(static_cast<VmId::underlying>(v));
    const auto a = panel->row(id);
    const auto b = panel2->row(id);
    for (std::size_t i = 0; i < a.size(); i += 101) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]));
    }
  }
}

TEST_F(SnapshotGeneratedTest, AdoptRejectsMismatchedPanel) {
  // A panel from a different trace (wrong vm count) must be refused.
  workloads::ScenarioOptions options;
  options.scale = 0.02;
  options.seed = 5;
  auto other = workloads::make_scenario(options);
  const TelemetryPanel* panel = other.trace->telemetry_panel();
  ASSERT_NE(panel, nullptr);
  std::ostringstream out(std::ios::binary);
  save_panel_snapshot(*panel, out);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_FALSE(
      scenario_->trace->adopt_telemetry_panel(load_panel_snapshot(in)));
}

// ---- SnapshotMapping: mmap'd read path + error handling -----------------

/// Writes `bytes` to a unique file under the system temp dir; removes it
/// on destruction.
class TempSnapshotFile {
 public:
  explicit TempSnapshotFile(const std::string& bytes,
                           const std::string& tag = "snap") {
    path_ = (std::filesystem::temp_directory_path() /
             ("cloudlens-maptest-" + tag + "-" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this))))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempSnapshotFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Scoped CLOUDLENS_NO_MMAP=1: forces SnapshotMapping's buffered-read
/// fallback for the duration of a test.
class ScopedNoMmap {
 public:
  ScopedNoMmap() { ::setenv("CLOUDLENS_NO_MMAP", "1", 1); }
  ~ScopedNoMmap() { ::unsetenv("CLOUDLENS_NO_MMAP"); }
};

TEST(SnapshotMappingTest, MappedReadIsByteIdenticalToBufferedRead) {
  Topology topo = tiny_topology();
  TraceFixture fx(topo);
  const std::string bytes = save_to_string(topo, fx.trace);
  TempSnapshotFile file(bytes, "roundtrip");

  SnapshotMapping mapped(file.path());
  EXPECT_TRUE(mapped.mapped());
  ASSERT_EQ(mapped.bytes().size(), bytes.size());
  EXPECT_EQ(std::string(mapped.bytes()), bytes);

  ScopedNoMmap no_mmap;
  SnapshotMapping buffered(file.path());
  EXPECT_FALSE(buffered.mapped());
  ASSERT_EQ(buffered.bytes().size(), bytes.size());
  EXPECT_EQ(std::string(buffered.bytes()), std::string(mapped.bytes()));
}

TEST(SnapshotMappingTest, LoadFromMappingMatchesStreamLoad) {
  Topology topo = tiny_topology();
  TraceFixture fx(topo);
  const std::string bytes = save_to_string(topo, fx.trace);
  TempSnapshotFile file(bytes, "load");

  const LoadedSnapshot from_stream = load_from_string(bytes);
  SnapshotMapping mapping(file.path());
  const LoadedSnapshot from_map = load_trace_snapshot(mapping);

  const auto& a = from_stream.trace->vms();
  const auto& b = from_map.trace->vms();
  ASSERT_EQ(a.size(), b.size());
  const TimeGrid& grid = from_stream.trace->telemetry_grid();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subscription, b[i].subscription);
    EXPECT_EQ(a[i].created, b[i].created);
    EXPECT_EQ(a[i].deleted, b[i].deleted);
    if (a[i].utilization == nullptr) {
      EXPECT_EQ(b[i].utilization, nullptr);
      continue;
    }
    ASSERT_NE(b[i].utilization, nullptr);
    for (std::size_t g = 0; g < grid.count; g += 97) {
      EXPECT_EQ(
          std::bit_cast<std::uint64_t>(a[i].utilization->at(grid.at(g))),
          std::bit_cast<std::uint64_t>(b[i].utilization->at(grid.at(g))));
    }
  }
}

TEST(SnapshotMappingTest, RejectsTruncatedFile) {
  Topology topo = tiny_topology();
  TraceFixture fx(topo);
  const std::string bytes = save_to_string(topo, fx.trace);
  TempSnapshotFile file(bytes.substr(0, bytes.size() / 2), "trunc");
  EXPECT_THROW(SnapshotMapping{file.path()}, CheckError);
  ScopedNoMmap no_mmap;  // same verdict through the buffered fallback
  EXPECT_THROW(SnapshotMapping{file.path()}, CheckError);
}

TEST(SnapshotMappingTest, RejectsBadMagic) {
  Topology topo = tiny_topology();
  TraceFixture fx(topo);
  std::string bytes = save_to_string(topo, fx.trace);
  bytes[0] = 'X';
  TempSnapshotFile file(bytes, "magic");
  EXPECT_THROW(SnapshotMapping{file.path()}, CheckError);
}

TEST(SnapshotMappingTest, RejectsSectionTablePastEof) {
  Topology topo = tiny_topology();
  TraceFixture fx(topo);
  std::string bytes = save_to_string(topo, fx.trace);
  // First table entry: [u32 id][u32 pad][u64 offset][u64 size] at byte 16.
  // Blow up its size so offset+size runs past EOF; the open-time parse
  // must reject it instead of handing out a wild span.
  ASSERT_GT(bytes.size(), 40u);
  for (std::size_t i = 32; i < 40; ++i) bytes[i] = static_cast<char>(0xFF);
  TempSnapshotFile file(bytes, "pasteof");
  EXPECT_THROW(SnapshotMapping{file.path()}, CheckError);
}

TEST(SnapshotMappingTest, RejectsEmptyAndMissingFile) {
  TempSnapshotFile file(std::string(), "empty");
  EXPECT_THROW(SnapshotMapping{file.path()}, CheckError);
  EXPECT_THROW(SnapshotMapping{file.path() + ".does-not-exist"}, CheckError);
  ScopedNoMmap no_mmap;
  EXPECT_THROW(SnapshotMapping{file.path()}, CheckError);
  EXPECT_THROW(SnapshotMapping{file.path() + ".does-not-exist"}, CheckError);
}

TEST_F(SnapshotGeneratedTest, PanelSnapshotLoadsIdenticallyViaMapping) {
  const TelemetryPanel* panel = scenario_->trace->telemetry_panel();
  ASSERT_NE(panel, nullptr);
  std::ostringstream out(std::ios::binary);
  save_panel_snapshot(*panel, out);
  TempSnapshotFile file(out.str(), "panelmap");

  SnapshotMapping mapping(file.path());
  EXPECT_TRUE(mapping.has_section(7));  // kPanel
  const auto panel2 = load_panel_snapshot(mapping);
  ASSERT_EQ(panel2->vm_count(), panel->vm_count());
  for (std::size_t v = 0; v < panel->vm_count(); v += 61) {
    const VmId id(static_cast<VmId::underlying>(v));
    const auto a = panel->row(id);
    const auto b = panel2->row(id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 101) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]));
    }
  }
}

TEST(SnapshotMappingTest, PanelShardRoundTripsThroughMapping) {
  // Hand-built shard: 3 rows x 24 ticks + 3 x 2 hourly samples.
  PanelShardHeader header;
  header.grid = TimeGrid{0, kHour / 12, 24};
  header.shard_index = 2;
  header.shard_count = 5;
  header.row_count = 3;
  header.hourly_count = 2;
  header.router_digest = 0xABCDEF0123456789ull;
  std::vector<double> rows(3 * 24), hourly(3 * 2);
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i] = 0.001 * static_cast<double>(i) - 0.5;
  for (std::size_t i = 0; i < hourly.size(); ++i)
    hourly[i] = 1.0 / (1.0 + static_cast<double>(i));

  std::ostringstream out(std::ios::binary);
  save_panel_shard_snapshot(header, rows, hourly, out);
  TempSnapshotFile file(out.str(), "shard");

  SnapshotMapping mapping(file.path());
  const PanelShardView view = open_panel_shard(mapping);
  EXPECT_EQ(view.header.shard_index, header.shard_index);
  EXPECT_EQ(view.header.shard_count, header.shard_count);
  EXPECT_EQ(view.header.row_count, header.row_count);
  EXPECT_EQ(view.header.hourly_count, header.hourly_count);
  EXPECT_EQ(view.header.router_digest, header.router_digest);
  EXPECT_EQ(view.header.grid.count, header.grid.count);
  ASSERT_EQ(view.rows.size(), rows.size());
  ASSERT_EQ(view.hourly.size(), hourly.size());
  // The payload spans alias the mapping at natural double alignment and
  // reproduce every sample bit for bit.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.rows.data()) %
                alignof(double),
            0u);
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(view.rows[i]),
              std::bit_cast<std::uint64_t>(rows[i]));
  for (std::size_t i = 0; i < hourly.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(view.hourly[i]),
              std::bit_cast<std::uint64_t>(hourly[i]));
}

}  // namespace
}  // namespace cloudlens
