#include "analysis/context.h"
#include "analysis/classifier.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::analysis {
namespace {

using workloads::DiurnalUtilization;
using workloads::HourlyPeakUtilization;
using workloads::IrregularUtilization;
using workloads::StableUtilization;

template <typename Model>
stats::TimeSeries evaluate(const Model& model) {
  const TimeGrid grid = week_telemetry_grid();
  stats::TimeSeries s(grid);
  for (std::size_t i = 0; i < grid.count; ++i) s[i] = model.at(grid.at(i));
  return s;
}

TEST(ClassifierTest, StableClassified) {
  const StableUtilization model({}, 1);
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kStable);
}

TEST(ClassifierTest, DiurnalClassified) {
  const DiurnalUtilization model({}, 2);
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kDiurnal);
}

TEST(ClassifierTest, HourlyPeakClassified) {
  const HourlyPeakUtilization model({}, 3);
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kHourlyPeak);
}

TEST(ClassifierTest, IrregularClassified) {
  IrregularUtilization::Params p;
  p.spike_prob = 0.05;
  const IrregularUtilization model(p, 4);
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kIrregular);
}

TEST(ClassifierTest, ConstantSeriesIsStable) {
  stats::TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = 0.42;
  EXPECT_EQ(classify(s), UtilizationClass::kStable);
}

TEST(ClassifierTest, ToStringNames) {
  EXPECT_EQ(to_string(UtilizationClass::kDiurnal), "diurnal");
  EXPECT_EQ(to_string(UtilizationClass::kStable), "stable");
  EXPECT_EQ(to_string(UtilizationClass::kIrregular), "irregular");
  EXPECT_EQ(to_string(UtilizationClass::kHourlyPeak), "hourly-peak");
}

// Classification must be robust across seeds, not just one lucky draw.
class ClassifierSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClassifierSeedSweep, DiurnalRobustAcrossSeeds) {
  DiurnalUtilization::Params p;
  p.noise_sigma = 0.05;  // realistic per-VM noise
  const DiurnalUtilization model(p, GetParam());
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kDiurnal);
}

TEST_P(ClassifierSeedSweep, HourlyRobustAcrossSeeds) {
  HourlyPeakUtilization::Params p;
  p.noise_sigma = 0.04;
  const HourlyPeakUtilization model(p, GetParam());
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kHourlyPeak);
}

TEST_P(ClassifierSeedSweep, StableRobustAcrossSeeds) {
  const StableUtilization model({}, GetParam());
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kStable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Amplitude sweep: diurnal detection should hold from modest to large
// amplitudes as long as the series is not stable-flat.
class DiurnalAmplitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiurnalAmplitudeSweep, DetectedAcrossAmplitudes) {
  DiurnalUtilization::Params p;
  p.base = 0.05;
  p.weekday_peak = p.base + GetParam();
  p.weekend_peak = p.base + GetParam() * 0.4;
  p.noise_sigma = 0.03;
  const DiurnalUtilization model(p, 5);
  EXPECT_EQ(classify(evaluate(model)), UtilizationClass::kDiurnal);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, DiurnalAmplitudeSweep,
                         ::testing::Values(0.2, 0.3, 0.4, 0.5));

TEST(ClassifierTest, ThresholdOptionsChangeStableBoundary) {
  DiurnalUtilization::Params p;
  p.base = 0.20;
  p.weekday_peak = 0.26;  // very low amplitude
  p.weekend_peak = 0.22;
  p.noise_sigma = 0.005;
  const auto series = evaluate(DiurnalUtilization(p, 6));
  ClassifierOptions strict;
  strict.stable_stddev_max = 0.001;  // nothing is stable
  ClassifierOptions lax;
  lax.stable_stddev_max = 0.20;  // everything is stable
  EXPECT_EQ(classify(series, lax), UtilizationClass::kStable);
  EXPECT_NE(classify(series, strict), UtilizationClass::kStable);
}

TEST(ClassifyPopulationTest, RecoversPlantedMixture) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  // Plant 12 diurnal, 6 stable, 2 hourly-peak.
  for (int i = 0; i < 12; ++i)
    fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 1, -kDay, kNoEnd,
              std::make_shared<DiurnalUtilization>(
                  DiurnalUtilization::Params{}, 100 + i));
  for (int i = 0; i < 6; ++i)
    fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 1, -kDay, kNoEnd,
              std::make_shared<StableUtilization>(StableUtilization::Params{},
                                                  200 + i));
  for (int i = 0; i < 2; ++i)
    fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 1, -kDay, kNoEnd,
              std::make_shared<HourlyPeakUtilization>(
                  HourlyPeakUtilization::Params{}, 300 + i));

  const auto shares = classify_population(AnalysisContext(fx.trace), CloudType::kPrivate, 0);
  EXPECT_EQ(shares.classified, 20u);
  EXPECT_NEAR(shares.diurnal, 0.60, 1e-9);
  EXPECT_NEAR(shares.stable, 0.30, 1e-9);
  EXPECT_NEAR(shares.hourly_peak, 0.10, 1e-9);
  EXPECT_NEAR(shares.irregular, 0.0, 1e-9);
}

TEST(ClassifyPopulationTest, SkipsNonCoveringVms) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  // Alive only half the window: not classified.
  fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 1, 3 * kDay, kNoEnd,
            std::make_shared<StableUtilization>(StableUtilization::Params{},
                                                1));
  const auto shares = classify_population(AnalysisContext(fx.trace), CloudType::kPrivate, 0);
  EXPECT_EQ(shares.classified, 0u);
}

TEST(ClassifyPopulationTest, MaxVmsCapsSample) {
  const Topology topo = test::tiny_topology();
  test::TraceFixture fx(topo);
  const NodeId node = test::first_node(topo, CloudType::kPrivate);
  for (int i = 0; i < 40; ++i)
    fx.add_vm(CloudType::kPrivate, fx.private_sub, node, 1, -kDay, kNoEnd,
              std::make_shared<StableUtilization>(StableUtilization::Params{},
                                                  i));
  const auto shares = classify_population(AnalysisContext(fx.trace), CloudType::kPrivate, 10);
  EXPECT_LE(shares.classified, 20u);
  EXPECT_GE(shares.classified, 10u);
  EXPECT_NEAR(shares.stable, 1.0, 1e-9);
}

}  // namespace
}  // namespace cloudlens::analysis
