#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace cloudlens::stats {
namespace {

TEST(PearsonTest, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftAndScaleInvariant) {
  cloudlens::Rng rng(1);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 5.0 * x[i] - 3.0;
  }
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-9);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  const std::vector<double> x = {3, 3, 3};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
  EXPECT_DOUBLE_EQ(pearson(y, x), 0.0);
}

TEST(PearsonTest, IndependentNoiseNearZero) {
  cloudlens::Rng rng(2);
  std::vector<double> x(5000), y(5000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(PearsonTest, LengthMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(pearson(x, y), cloudlens::CheckError);
}

TEST(PearsonTest, TooShortGivesZero) {
  EXPECT_DOUBLE_EQ(pearson(std::vector<double>{1}, std::vector<double>{2}),
                   0.0);
}

TEST(PearsonTest, SymmetricInArguments) {
  cloudlens::Rng rng(3);
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform() + 0.5 * x[i];
  }
  EXPECT_DOUBLE_EQ(pearson(x, y), pearson(y, x));
}

TEST(PearsonTest, PhaseShiftedSinusoidsDecorrelate) {
  // A quarter-period shift (orthogonal phases) drives Pearson to ~0 — the
  // mechanism behind Fig. 7(b)'s low public cross-region correlations for
  // time-zone-shifted workloads.
  std::vector<double> x, y;
  for (int i = 0; i < 240; ++i) {
    const double t = 2 * M_PI * i / 24.0;
    x.push_back(std::sin(t));
    y.push_back(std::sin(t + M_PI / 2));
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.02);
}

TEST(SpearmanTest, MonotonicNonlinearIsOne) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.1 * i));  // nonlinear but monotone
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-9);
  // Pearson is below 1 for nonlinear relations.
  EXPECT_LT(pearson(x, y), 0.999);
}

TEST(SpearmanTest, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-9);
}

TEST(SpearmanTest, AntiMonotone) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 8, 7, 3, 1};
  EXPECT_NEAR(spearman(x, y), -1.0, 1e-9);
}

}  // namespace
}  // namespace cloudlens::stats
