#include "analysis/context.h"
#include "analysis/spatial.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "testutil.h"
#include "workloads/patterns.h"

namespace cloudlens::analysis {
namespace {

using workloads::DiurnalUtilization;
using workloads::StableUtilization;

class SpatialTest : public ::testing::Test {
 protected:
  SpatialTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  ServiceId add_service(CloudType cloud, bool agnostic) {
    ServiceInfo svc;
    svc.cloud = cloud;
    svc.region_agnostic = agnostic;
    return fx_.trace.add_service(svc);
  }

  SubscriptionId add_sub(CloudType cloud, ServiceId service = ServiceId()) {
    SubscriptionInfo info;
    info.cloud = cloud;
    info.service = service;
    if (service.valid()) info.party = PartyType::kFirstParty;
    return fx_.trace.add_subscription(info);
  }

  NodeId node_in_region(int region, CloudType cloud) {
    const auto clusters = topo_.clusters_in(RegionId(region), cloud);
    return topo_.cluster(clusters[0]).nodes.front();
  }

  std::shared_ptr<DiurnalUtilization> diurnal(double tz, std::uint64_t seed) {
    DiurnalUtilization::Params p;
    p.tz_offset_hours = tz;
    p.noise_sigma = 0.03;
    return std::make_shared<DiurnalUtilization>(p, seed);
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(SpatialTest, SameShapeVmsCorrelateWithNode) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  for (int i = 0; i < 4; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
               diurnal(-5, 100 + i));
  const auto corr = node_vm_correlations(AnalysisContext(fx_.trace), CloudType::kPrivate, 0);
  ASSERT_EQ(corr.size(), 4u);
  for (const double r : corr) EXPECT_GT(r, 0.6);
}

TEST_F(SpatialTest, MixedShapesDecorrelate) {
  const NodeId node = node_in_region(0, CloudType::kPublic);
  // A flat VM on a node dominated by diurnal VMs barely correlates.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, -kDay, kNoEnd,
             std::make_shared<StableUtilization>(StableUtilization::Params{},
                                                 7));
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 4, -kDay, kNoEnd,
               diurnal(-5, 200 + i));
  const auto corr = node_vm_correlations(AnalysisContext(fx_.trace), CloudType::kPublic, 0);
  ASSERT_EQ(corr.size(), 4u);
  // corr is sorted ascending; the stable VM's entry is the smallest.
  EXPECT_LT(corr.front(), 0.3);
  EXPECT_GT(corr.back(), 0.6);
}

TEST_F(SpatialTest, SingleVmNodesExcluded) {
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 4, -kDay, kNoEnd,
             diurnal(-5, 1));
  EXPECT_TRUE(node_vm_correlations(AnalysisContext(fx_.trace), CloudType::kPrivate, 0).empty());
}

TEST_F(SpatialTest, SubscriptionRegionProfilesSplitByRegion) {
  const NodeId n0 = node_in_region(0, CloudType::kPrivate);
  const NodeId n1 = node_in_region(1, CloudType::kPrivate);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n0, 4, -kDay, kNoEnd,
             diurnal(-5, 1), RegionId(0));
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n1, 4, -kDay, kNoEnd,
             diurnal(-5, 2), RegionId(1));
  const auto profiles =
      subscription_region_profiles(AnalysisContext(fx_.trace), fx_.private_sub);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].region, RegionId(0));
  EXPECT_EQ(profiles[1].region, RegionId(1));
  EXPECT_EQ(profiles[0].vms_used, 1u);
  EXPECT_EQ(profiles[0].hourly_utilization.size(), 168u);
}

TEST_F(SpatialTest, AlignedAnchorsCorrelateAcrossRegions) {
  // Region-agnostic: same anchor tz in both regions -> high correlation.
  const NodeId n0 = node_in_region(0, CloudType::kPrivate);
  const NodeId n1 = node_in_region(1, CloudType::kPrivate);
  for (int i = 0; i < 3; ++i) {
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n0, 4, -kDay, kNoEnd,
               diurnal(-5, 10 + i), RegionId(0));
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, n1, 4, -kDay, kNoEnd,
               diurnal(-5, 20 + i), RegionId(1));
  }
  const auto corrs = cross_region_correlations(AnalysisContext(fx_.trace), CloudType::kPrivate);
  ASSERT_EQ(corrs.size(), 1u);
  EXPECT_GT(corrs[0], 0.8);
}

TEST_F(SpatialTest, ShiftedAnchorsDecorrelate) {
  // Region-local: anchors 8 hours apart -> visibly lower correlation.
  const NodeId n0 = node_in_region(0, CloudType::kPublic);
  const NodeId n1 = node_in_region(1, CloudType::kPublic);
  for (int i = 0; i < 3; ++i) {
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, n0, 4, -kDay, kNoEnd,
               diurnal(-5, 30 + i), RegionId(0));
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, n1, 4, -kDay, kNoEnd,
               diurnal(-13, 40 + i), RegionId(1));
  }
  const auto shifted = cross_region_correlations(AnalysisContext(fx_.trace), CloudType::kPublic);
  ASSERT_EQ(shifted.size(), 1u);
  EXPECT_LT(shifted[0], 0.5);
}

TEST_F(SpatialTest, SingleRegionSubscriptionsYieldNoPairs) {
  const NodeId n0 = node_in_region(0, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, n0, 4, -kDay, kNoEnd,
             diurnal(-5, 1));
  EXPECT_TRUE(cross_region_correlations(AnalysisContext(fx_.trace), CloudType::kPublic).empty());
}

TEST_F(SpatialTest, DetectsPlantedRegionAgnosticService) {
  const ServiceId agnostic = add_service(CloudType::kPrivate, true);
  const ServiceId local = add_service(CloudType::kPrivate, false);
  const SubscriptionId sub_a = add_sub(CloudType::kPrivate, agnostic);
  const SubscriptionId sub_l = add_sub(CloudType::kPrivate, local);
  const NodeId n0 = node_in_region(0, CloudType::kPrivate);
  const NodeId n1 = node_in_region(1, CloudType::kPrivate);

  auto add_service_vm = [&](SubscriptionId sub, ServiceId svc, NodeId node,
                            RegionId region, double tz, std::uint64_t seed) {
    VmRecord rec;
    rec.subscription = sub;
    rec.service = svc;
    rec.cloud = CloudType::kPrivate;
    rec.party = PartyType::kFirstParty;
    rec.region = region;
    const Node& n = topo_.node(node);
    rec.cluster = n.cluster;
    rec.rack = n.rack;
    rec.node = node;
    rec.cores = 4;
    rec.memory_gb = 16;
    rec.created = -kDay;
    rec.deleted = kNoEnd;
    rec.utilization = diurnal(tz, seed);
    fx_.trace.add_vm(std::move(rec));
  };

  // Agnostic service: same anchor everywhere.
  for (int i = 0; i < 3; ++i) {
    add_service_vm(sub_a, agnostic, n0, RegionId(0), -5, 50 + i);
    add_service_vm(sub_a, agnostic, n1, RegionId(1), -5, 60 + i);
  }
  // Local service: anchors follow region time zones far apart.
  for (int i = 0; i < 3; ++i) {
    add_service_vm(sub_l, local, n0, RegionId(0), -5, 70 + i);
    add_service_vm(sub_l, local, n1, RegionId(1), -13, 80 + i);
  }

  const auto verdicts =
      detect_region_agnostic_services(AnalysisContext(fx_.trace), CloudType::kPrivate, 0.7);
  ASSERT_EQ(verdicts.size(), 2u);
  const auto& va = verdicts[0].service == agnostic ? verdicts[0] : verdicts[1];
  const auto& vl = verdicts[0].service == local ? verdicts[0] : verdicts[1];
  EXPECT_TRUE(va.region_agnostic);
  EXPECT_FALSE(vl.region_agnostic);
  EXPECT_GT(va.min_pair_correlation, vl.min_pair_correlation);
  EXPECT_EQ(va.regions, 2u);
}

TEST_F(SpatialTest, SingleRegionServicesNotJudged) {
  const ServiceId svc = add_service(CloudType::kPrivate, true);
  const SubscriptionId sub = add_sub(CloudType::kPrivate, svc);
  VmRecord rec;
  rec.subscription = sub;
  rec.service = svc;
  rec.cloud = CloudType::kPrivate;
  rec.region = RegionId(0);
  const NodeId node = node_in_region(0, CloudType::kPrivate);
  const Node& n = topo_.node(node);
  rec.cluster = n.cluster;
  rec.rack = n.rack;
  rec.node = node;
  rec.created = -kDay;
  rec.deleted = kNoEnd;
  rec.utilization = diurnal(-5, 1);
  fx_.trace.add_vm(std::move(rec));
  EXPECT_TRUE(
      detect_region_agnostic_services(AnalysisContext(fx_.trace), CloudType::kPrivate).empty());
}

}  // namespace
}  // namespace cloudlens::analysis
