#include "cloudsim/simulator.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"

namespace cloudlens {
namespace {

DeploymentRequest make_request(SubscriptionId sub, CloudType cloud,
                               SimTime create, SimTime remove,
                               double cores = 16) {
  DeploymentRequest req;
  req.request.subscription = sub;
  req.request.cloud = cloud;
  req.request.region = RegionId(0);
  req.request.cores = cores;
  req.request.memory_gb = cores * 4;
  req.create = create;
  req.remove = remove;
  return req;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(SimulatorTest, PlacesAllWhenCapacitySuffices) {
  std::vector<DeploymentRequest> reqs;
  for (int i = 0; i < 8; ++i)
    reqs.push_back(make_request(fx_.private_sub, CloudType::kPrivate,
                                i * kHour, kNoEnd));
  const auto stats = run_simulation(topo_, fx_.trace, reqs);
  EXPECT_EQ(stats.requested, 8u);
  EXPECT_EQ(stats.placed, 8u);
  EXPECT_EQ(stats.allocation_failures, 0u);
  EXPECT_EQ(fx_.trace.vms().size(), 8u);
}

TEST_F(SimulatorTest, RecordsMatchRequests) {
  std::vector<DeploymentRequest> reqs;
  auto req = make_request(fx_.public_sub, CloudType::kPublic, kHour,
                          5 * kHour, 4);
  req.party = PartyType::kThirdParty;
  req.utilization = std::make_shared<ConstantUtilization>(0.3);
  reqs.push_back(req);
  run_simulation(topo_, fx_.trace, reqs);

  ASSERT_EQ(fx_.trace.vms().size(), 1u);
  const VmRecord& vm = fx_.trace.vms()[0];
  EXPECT_EQ(vm.subscription, fx_.public_sub);
  EXPECT_EQ(vm.cloud, CloudType::kPublic);
  EXPECT_EQ(vm.party, PartyType::kThirdParty);
  EXPECT_EQ(vm.created, kHour);
  EXPECT_EQ(vm.deleted, 5 * kHour);
  EXPECT_DOUBLE_EQ(vm.cores, 4);
  EXPECT_TRUE(vm.placed());
  ASSERT_NE(vm.utilization, nullptr);
  EXPECT_DOUBLE_EQ(vm.utilization->at(0), 0.3);
}

TEST_F(SimulatorTest, CountsFailuresWhenFull) {
  // Private region 0 holds 8x16 cores; the 9th concurrent VM fails.
  std::vector<DeploymentRequest> reqs;
  for (int i = 0; i < 9; ++i)
    reqs.push_back(make_request(fx_.private_sub, CloudType::kPrivate, 0,
                                kNoEnd));
  const auto stats = run_simulation(topo_, fx_.trace, reqs);
  EXPECT_EQ(stats.placed, 8u);
  EXPECT_EQ(stats.allocation_failures, 1u);
  EXPECT_EQ(fx_.trace.vms().size(), 8u);  // failed request not recorded
}

TEST_F(SimulatorTest, CapacityFreedByRemovals) {
  std::vector<DeploymentRequest> reqs;
  // Fill the region for [0, 2h), then request again at 2h: removals at 2h
  // must be processed before the new create.
  for (int i = 0; i < 8; ++i)
    reqs.push_back(
        make_request(fx_.private_sub, CloudType::kPrivate, 0, 2 * kHour));
  reqs.push_back(
      make_request(fx_.private_sub, CloudType::kPrivate, 2 * kHour, kNoEnd));
  const auto stats = run_simulation(topo_, fx_.trace, reqs);
  EXPECT_EQ(stats.placed, 9u);
  EXPECT_EQ(stats.allocation_failures, 0u);
}

TEST_F(SimulatorTest, UnsortedRequestsAreOrdered) {
  std::vector<DeploymentRequest> reqs;
  reqs.push_back(
      make_request(fx_.private_sub, CloudType::kPrivate, 3 * kHour, kNoEnd, 4));
  reqs.push_back(
      make_request(fx_.private_sub, CloudType::kPrivate, kHour, kNoEnd, 4));
  run_simulation(topo_, fx_.trace, reqs);
  ASSERT_EQ(fx_.trace.vms().size(), 2u);
  EXPECT_LE(fx_.trace.vms()[0].created, fx_.trace.vms()[1].created);
}

TEST_F(SimulatorTest, NonPositiveLifetimeThrows) {
  std::vector<DeploymentRequest> reqs;
  reqs.push_back(make_request(fx_.private_sub, CloudType::kPrivate, kHour,
                              kHour));
  EXPECT_THROW(run_simulation(topo_, fx_.trace, reqs), CheckError);
}

TEST_F(SimulatorTest, SequentialShortVmsReuseCapacity) {
  // 100 sequential 1-hour VMs that each fill the region: all place.
  std::vector<DeploymentRequest> reqs;
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 8; ++j)
      reqs.push_back(make_request(fx_.private_sub, CloudType::kPrivate,
                                  i * kHour, (i + 1) * kHour));
  }
  const auto stats = run_simulation(topo_, fx_.trace, reqs);
  EXPECT_EQ(stats.placed, 800u);
  EXPECT_EQ(stats.allocation_failures, 0u);
}

TEST_F(SimulatorTest, StatsAcrossTwoRuns) {
  std::vector<DeploymentRequest> first = {
      make_request(fx_.private_sub, CloudType::kPrivate, 0, kNoEnd, 4)};
  std::vector<DeploymentRequest> second = {
      make_request(fx_.public_sub, CloudType::kPublic, 0, kNoEnd, 4)};
  run_simulation(topo_, fx_.trace, first);
  run_simulation(topo_, fx_.trace, second);
  EXPECT_EQ(fx_.trace.vms().size(), 2u);
  EXPECT_EQ(fx_.trace.vms()[0].cloud, CloudType::kPrivate);
  EXPECT_EQ(fx_.trace.vms()[1].cloud, CloudType::kPublic);
}

}  // namespace
}  // namespace cloudlens
