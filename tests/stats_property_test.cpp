// Additional cross-cutting property tests over the stats layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/fft.h"
#include "stats/histogram.h"
#include "stats/kernels/dispatch.h"
#include "stats/periodicity.h"
#include "stats/series.h"

namespace cloudlens::stats {
namespace {

class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, MonotoneInPAndBounded) {
  Rng rng(GetParam());
  std::vector<double> xs(257);
  for (auto& x : xs) x = rng.lognormal(1.0, 2.0);
  double prev = -1e300;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = quantile(xs, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), *std::max_element(xs.begin(), xs.end()));
}

TEST_P(QuantileProperty, EcdfInverseIsRightInverse) {
  Rng rng(GetParam() + 1);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal(0, 3);
  const Ecdf e(xs);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    // F(F^-1(p)) >= p always holds for the empirical CDF.
    EXPECT_GE(e.at(e.inverse(p)), p - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Values(1, 7, 23, 91));

TEST(HistogramEcdfConsistency, CumulativeMatchesEcdfAtEdges) {
  Rng rng(5);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.uniform(0.0, 10.0);
  Histogram1D h(0, 10, 20);
  for (const double x : xs) h.add(x);
  const Ecdf e(xs);
  const auto cum = h.cumulative();
  for (std::size_t b = 0; b < h.axis().bins(); ++b) {
    // The histogram's cumulative value at a bin equals the ECDF evaluated
    // just below the upper edge (up to items sitting exactly on the edge).
    EXPECT_NEAR(cum[b], e.at(h.axis().upper_edge(b) - 1e-9), 0.01);
  }
}

TEST(UniformIntUnbiased, NonPowerOfTwoRange) {
  // Lemire rejection must not bias any residue class for n not a power
  // of two.
  Rng rng(6);
  constexpr std::uint64_t n = 6;
  std::array<int, n> hits{};
  const int draws = 120000;
  for (int i = 0; i < draws; ++i) ++hits[rng.uniform_int(n)];
  for (const int h : hits) {
    EXPECT_NEAR(double(h) / draws, 1.0 / double(n), 0.006);
  }
}

class PeriodicityNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(PeriodicityNoiseSweep, DailySignalSurvivesNoise) {
  const double sigma = GetParam();
  Rng rng(17);
  TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double phase =
        2.0 * std::numbers::pi * double(s.grid().at(i)) / double(kDay);
    s[i] = 0.3 + 0.15 * std::sin(phase) + rng.normal(0, sigma);
  }
  const auto detection = detect_period(s);
  ASSERT_TRUE(detection.periodic) << "sigma=" << sigma;
  EXPECT_NEAR(double(detection.period), double(kDay), double(kDay) * 0.1);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PeriodicityNoiseSweep,
                         ::testing::Values(0.01, 0.05, 0.10, 0.15));

TEST(SummaryConsistency, SummaryAgreesWithDirectQuantiles) {
  Rng rng(8);
  std::vector<double> xs(999);
  for (auto& x : xs) x = rng.gamma(2.0, 3.0);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p50, quantile(xs, 0.5));
  EXPECT_DOUBLE_EQ(s.p95, quantile(xs, 0.95));
  EXPECT_NEAR(s.mean, mean(xs), 1e-12);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

// --- Kernel-tier invariants ----------------------------------------------
//
// pearson_fused and periodicity_score_acf now run through the dispatched
// kernel seam, so their mathematical invariants are asserted under EVERY
// (tier, mode) this machine can execute — a property regression in one
// SIMD variant fails here by name.

/// Restores the dispatch config (and re-resolves from the environment)
/// when a per-tier test block finishes.
class DispatchRestore {
 public:
  ~DispatchRestore() { kernels::reset_from_env(); }
};

std::vector<kernels::Config> runnable_kernel_configs() {
  std::vector<kernels::Config> configs;
  for (const auto tier :
       {kernels::Tier::kScalar, kernels::Tier::kSse2, kernels::Tier::kAvx2}) {
    if (!kernels::tier_supported(tier)) continue;
    configs.push_back({tier, kernels::Mode::kStrict});
    configs.push_back({tier, kernels::Mode::kFast});
  }
  return configs;
}

std::string config_label(kernels::Config c) {
  return std::string(kernels::to_string(c.tier)) + "/" +
         std::string(kernels::to_string(c.mode));
}

class PearsonKernelProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PearsonKernelProperty, SymmetricScaleInvariantAndBounded) {
  Rng rng(GetParam());
  const std::size_t n = 2016;  // one telemetry week
  std::vector<double> x(n), y(n), x2(n), x_shift(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = 0.6 * x[i] + 0.4 * rng.uniform();
    x2[i] = 2.0 * x[i];        // exact power-of-two scaling
    x_shift[i] = x[i] + 0.5;   // translation
  }
  DispatchRestore restore;
  for (const auto config : runnable_kernel_configs()) {
    SCOPED_TRACE(config_label(config));
    kernels::set_active(config);
    const double r = pearson_fused(x, y);
    EXPECT_LE(std::fabs(r), 1.0);
    // Argument symmetry is exact in both modes: swapping x and y swaps
    // sx/sy and sxx/syy, and every product is commutative bit-for-bit.
    EXPECT_EQ(r, pearson_fused(y, x));
    // Scaling by a power of two rescales every co-moment exactly, so the
    // correlation is bit-identical, not merely close.
    EXPECT_EQ(r, pearson_fused(x2, y));
    // Translation invariance is only approximate in the one-pass
    // formulation (cancellation in sxx - sx^2/n grows with the offset).
    EXPECT_NEAR(r, pearson_fused(x_shift, y), 1e-9);
    // Perfect self-correlation, degenerate-variance guard.
    EXPECT_EQ(pearson_fused(x, x), 1.0);
    const std::vector<double> constant(n, 0.25);
    EXPECT_EQ(pearson_fused(x, constant), 0.0);
  }
}

TEST_P(PearsonKernelProperty, FastModeStaysWithinDocumentedTolerance) {
  Rng rng(GetParam() + 99);
  const std::size_t n = 2016;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  DispatchRestore restore;
  kernels::set_active({kernels::Tier::kScalar, kernels::Mode::kStrict});
  const double reference = pearson_fused(x, y);
  for (const auto config : runnable_kernel_configs()) {
    kernels::set_active(config);
    if (config.mode == kernels::Mode::kStrict) {
      // Strict mode pins every tier to the scalar bytes.
      EXPECT_EQ(pearson_fused(x, y), reference) << config_label(config);
    } else {
      EXPECT_NEAR(pearson_fused(x, y), reference, 1e-9)
          << config_label(config);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonKernelProperty,
                         ::testing::Values(11u, 23u, 47u));

TEST(PeriodicityKernelProperty, AcfInvariantsHoldAtEveryTier) {
  // A clean daily sinusoid with mild noise, sampled at the telemetry
  // interval for two weeks.
  const std::size_t n = 2 * 2016;
  Rng rng(5);
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * double(kTelemetryInterval);
    xs[i] = 0.5 + 0.3 * std::sin(2.0 * std::numbers::pi * t / double(kDay)) +
            0.02 * rng.normal(0, 1);
  }
  DispatchRestore restore;
  kernels::set_active({kernels::Tier::kScalar, kernels::Mode::kStrict});
  const std::vector<double> acf_reference = autocorrelation(xs);
  const double score_reference =
      periodicity_score_acf(acf_reference, kTelemetryInterval, kDay);
  EXPECT_GT(score_reference, 0.5);  // the planted period is detected

  for (const auto config : runnable_kernel_configs()) {
    SCOPED_TRACE(config_label(config));
    kernels::set_active(config);
    const std::vector<double> acf = autocorrelation(xs);
    ASSERT_EQ(acf.size(), n);
    // ACF(0) is exactly 1 by construction (buf[0] / buf[0]).
    EXPECT_EQ(acf[0], 1.0);
    // Normalized ACF is bounded for a real series.
    for (const double a : acf) EXPECT_LE(std::fabs(a), 1.0 + 1e-9);
    // The butterfly kernel is bit-exact at every tier in both modes, so
    // the whole ACF — and therefore the score — must match scalar bytes.
    for (std::size_t lag = 0; lag < n; ++lag)
      ASSERT_EQ(acf[lag], acf_reference[lag]) << "lag " << lag;
    EXPECT_EQ(periodicity_score_acf(acf, kTelemetryInterval, kDay),
              score_reference);
    // A period that was not planted scores worse than the planted one.
    EXPECT_LT(periodicity_score_acf(acf, kTelemetryInterval, kHour),
              score_reference);
  }
}

}  // namespace
}  // namespace cloudlens::stats
