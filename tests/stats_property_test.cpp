// Additional cross-cutting property tests over the stats layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/periodicity.h"

namespace cloudlens::stats {
namespace {

class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, MonotoneInPAndBounded) {
  Rng rng(GetParam());
  std::vector<double> xs(257);
  for (auto& x : xs) x = rng.lognormal(1.0, 2.0);
  double prev = -1e300;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double q = quantile(xs, p);
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), *std::max_element(xs.begin(), xs.end()));
}

TEST_P(QuantileProperty, EcdfInverseIsRightInverse) {
  Rng rng(GetParam() + 1);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal(0, 3);
  const Ecdf e(xs);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    // F(F^-1(p)) >= p always holds for the empirical CDF.
    EXPECT_GE(e.at(e.inverse(p)), p - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Values(1, 7, 23, 91));

TEST(HistogramEcdfConsistency, CumulativeMatchesEcdfAtEdges) {
  Rng rng(5);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.uniform(0.0, 10.0);
  Histogram1D h(0, 10, 20);
  for (const double x : xs) h.add(x);
  const Ecdf e(xs);
  const auto cum = h.cumulative();
  for (std::size_t b = 0; b < h.axis().bins(); ++b) {
    // The histogram's cumulative value at a bin equals the ECDF evaluated
    // just below the upper edge (up to items sitting exactly on the edge).
    EXPECT_NEAR(cum[b], e.at(h.axis().upper_edge(b) - 1e-9), 0.01);
  }
}

TEST(UniformIntUnbiased, NonPowerOfTwoRange) {
  // Lemire rejection must not bias any residue class for n not a power
  // of two.
  Rng rng(6);
  constexpr std::uint64_t n = 6;
  std::array<int, n> hits{};
  const int draws = 120000;
  for (int i = 0; i < draws; ++i) ++hits[rng.uniform_int(n)];
  for (const int h : hits) {
    EXPECT_NEAR(double(h) / draws, 1.0 / double(n), 0.006);
  }
}

class PeriodicityNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(PeriodicityNoiseSweep, DailySignalSurvivesNoise) {
  const double sigma = GetParam();
  Rng rng(17);
  TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double phase =
        2.0 * std::numbers::pi * double(s.grid().at(i)) / double(kDay);
    s[i] = 0.3 + 0.15 * std::sin(phase) + rng.normal(0, sigma);
  }
  const auto detection = detect_period(s);
  ASSERT_TRUE(detection.periodic) << "sigma=" << sigma;
  EXPECT_NEAR(double(detection.period), double(kDay), double(kDay) * 0.1);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PeriodicityNoiseSweep,
                         ::testing::Values(0.01, 0.05, 0.10, 0.15));

TEST(SummaryConsistency, SummaryAgreesWithDirectQuantiles) {
  Rng rng(8);
  std::vector<double> xs(999);
  for (auto& x : xs) x = rng.gamma(2.0, 3.0);
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.p50, quantile(xs, 0.5));
  EXPECT_DOUBLE_EQ(s.p95, quantile(xs, 0.95));
  EXPECT_NEAR(s.mean, mean(xs), 1e-12);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

}  // namespace
}  // namespace cloudlens::stats
