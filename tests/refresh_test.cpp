#include "kb/refresh.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "testutil.h"
#include "analysis/context.h"
#include "workloads/patterns.h"

namespace cloudlens::kb {
namespace {

using workloads::StableUtilization;

class RefreshTest : public ::testing::Test {
 protected:
  RefreshTest() : topo_(test::tiny_topology()), fx_(topo_) {}
  Topology topo_;
  test::TraceFixture fx_;
  NodeId node_{test::first_node(topo_, CloudType::kPublic)};
};

TEST_F(RefreshTest, FirstRefreshAddsRecords) {
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.2));
  KnowledgeBase kb;
  const auto stats = refresh(kb, AnalysisContext(fx_.trace));
  EXPECT_EQ(stats.added, 1u);
  EXPECT_EQ(stats.updated, 0u);
  EXPECT_EQ(kb.size(), 1u);
}

TEST_F(RefreshTest, SecondRefreshBlendsNumerics) {
  StableUtilization::Params p;
  p.level = 0.10;
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
             std::make_shared<StableUtilization>(p, 1));
  KnowledgeBase kb;
  refresh(kb, AnalysisContext(fx_.trace));
  const double first_mean = kb.find(fx_.public_sub)->mean_utilization;

  // A new window in which the subscription also runs a hot VM.
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.9));
  RefreshOptions options;
  options.ewma_alpha = 0.5;
  const auto stats = refresh(kb, AnalysisContext(fx_.trace), options);
  EXPECT_EQ(stats.updated, 1u);
  EXPECT_EQ(stats.added, 0u);

  const auto* rec = kb.find(fx_.public_sub);
  ASSERT_NE(rec, nullptr);
  // The blended mean sits strictly between the old mean and the new
  // window's (higher) mean.
  EXPECT_GT(rec->mean_utilization, first_mean);
  EXPECT_LT(rec->mean_utilization, 0.9);
}

TEST_F(RefreshTest, SmallAlphaDampsChange) {
  StableUtilization::Params p;
  p.level = 0.10;
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
             std::make_shared<StableUtilization>(p, 2));
  KnowledgeBase slow_kb, fast_kb;
  refresh(slow_kb, AnalysisContext(fx_.trace));
  refresh(fast_kb, AnalysisContext(fx_.trace));

  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
             std::make_shared<ConstantUtilization>(0.9));
  RefreshOptions slow, fast;
  slow.ewma_alpha = 0.1;
  fast.ewma_alpha = 0.9;
  refresh(slow_kb, AnalysisContext(fx_.trace), slow);
  refresh(fast_kb, AnalysisContext(fx_.trace), fast);
  EXPECT_LT(slow_kb.find(fx_.public_sub)->mean_utilization,
            fast_kb.find(fx_.public_sub)->mean_utilization);
}

TEST_F(RefreshTest, HintsRecomputedAfterBlend) {
  // Window 1: stable & idle -> oversubscription candidate.
  StableUtilization::Params p;
  p.level = 0.10;
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
               std::make_shared<StableUtilization>(p, 10 + i));
  KnowledgeBase kb;
  refresh(kb, AnalysisContext(fx_.trace));
  EXPECT_TRUE(kb.find(fx_.public_sub)->oversubscription_candidate);

  // Window 2: the subscription turns hot; after enough refreshes the
  // blended p95 exceeds the threshold and the hint flips off.
  for (int i = 0; i < 9; ++i)
    fx_.add_vm(CloudType::kPublic, fx_.public_sub, node_, 2, -kDay, kNoEnd,
               std::make_shared<ConstantUtilization>(0.95));
  RefreshOptions options;
  options.ewma_alpha = 1.0;  // replace outright
  refresh(kb, AnalysisContext(fx_.trace), options);
  EXPECT_FALSE(kb.find(fx_.public_sub)->oversubscription_candidate);
}

TEST_F(RefreshTest, InvalidAlphaThrows) {
  KnowledgeBase kb;
  RefreshOptions options;
  options.ewma_alpha = 0.0;
  EXPECT_THROW(refresh(kb, AnalysisContext(fx_.trace), options), CheckError);
  options.ewma_alpha = 1.5;
  EXPECT_THROW(refresh(kb, AnalysisContext(fx_.trace), options), CheckError);
}

TEST_F(RefreshTest, ApplyPolicyHintsStandalone) {
  SubscriptionKnowledge rec;
  rec.short_lifetime_share = 0.9;
  rec.ended_vms = 20;
  rec.dominant_pattern = analysis::UtilizationClass::kHourlyPeak;
  rec.pattern_confidence = 1.0;
  apply_policy_hints(rec, ExtractorOptions{});
  EXPECT_TRUE(rec.spot_candidate);
  EXPECT_TRUE(rec.preprovision_target);
  EXPECT_FALSE(rec.oversubscription_candidate);
}

}  // namespace
}  // namespace cloudlens::kb
