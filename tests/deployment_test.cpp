#include "analysis/context.h"
#include "analysis/deployment.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace cloudlens::analysis {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  DeploymentTest() : topo_(test::tiny_topology()), fx_(topo_) {}

  SubscriptionId add_sub(CloudType cloud) {
    SubscriptionInfo info;
    info.cloud = cloud;
    return fx_.trace.add_subscription(info);
  }

  Topology topo_;
  test::TraceFixture fx_;
};

TEST_F(DeploymentTest, VmsPerSubscriptionCountsAliveOnly) {
  const NodeId node = test::first_node(topo_, CloudType::kPrivate);
  // 3 alive at snapshot, 1 dead before, 1 created after.
  for (int i = 0; i < 3; ++i)
    fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, 0, kNoEnd);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, 0, kHour);
  fx_.add_vm(CloudType::kPrivate, fx_.private_sub, node, 2, 5 * kDay, kNoEnd);

  const auto sizes =
      vms_per_subscription(AnalysisContext(fx_.trace), CloudType::kPrivate, 2 * kDay);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_DOUBLE_EQ(sizes[0], 3.0);
}

TEST_F(DeploymentTest, VmsPerSubscriptionSkipsOtherCloud) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  EXPECT_TRUE(
      vms_per_subscription(AnalysisContext(fx_.trace), CloudType::kPrivate, kDay).empty());
  EXPECT_EQ(vms_per_subscription(AnalysisContext(fx_.trace), CloudType::kPublic, kDay).size(),
            1u);
}

TEST_F(DeploymentTest, SubscriptionsPerClusterCountsDistinct) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  const SubscriptionId another = add_sub(CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 2, 0, kNoEnd);
  fx_.add_vm(CloudType::kPublic, another, node, 2, 0, kNoEnd);

  const auto counts =
      subscriptions_per_cluster(AnalysisContext(fx_.trace), CloudType::kPublic, kDay);
  // tiny_topology has 4 public clusters (2 regions x 1 dc x 1 per cloud)…
  // actually 2 regions x 1 dc x 1 cluster per cloud = 2 public clusters.
  ASSERT_EQ(counts.size(), 2u);
  // Sorted ascending: the empty cluster then the one with 2 subscriptions.
  EXPECT_DOUBLE_EQ(counts[0], 0.0);
  EXPECT_DOUBLE_EQ(counts[1], 2.0);
}

TEST_F(DeploymentTest, VmSizeHeatmapCounts) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 1, 0, kNoEnd);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 8, 0, kNoEnd);
  const auto hist = vm_size_heatmap(AnalysisContext(fx_.trace), CloudType::kPublic, kDay, 8);
  EXPECT_EQ(hist.total_count(), 2u);
  // Dead or other-cloud VMs are excluded.
  const auto empty = vm_size_heatmap(AnalysisContext(fx_.trace), CloudType::kPrivate, kDay, 8);
  EXPECT_EQ(empty.total_count(), 0u);
}

TEST_F(DeploymentTest, RegionSpreadSingleRegion) {
  const NodeId node = test::first_node(topo_, CloudType::kPublic);
  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node, 4, 0, kNoEnd);
  const auto spread = region_spread(AnalysisContext(fx_.trace), CloudType::kPublic, kDay);
  ASSERT_EQ(spread.regions_per_subscription.size(), 1u);
  EXPECT_DOUBLE_EQ(spread.regions_per_subscription[0], 1.0);
  EXPECT_DOUBLE_EQ(spread.single_region_core_share, 1.0);
  EXPECT_DOUBLE_EQ(spread.cumulative_core_share.back(), 1.0);
}

TEST_F(DeploymentTest, RegionSpreadMultiRegionCoreShares) {
  // Subscription A: 4 cores in region 0 only.
  // Subscription B: 4 cores in region 0 and 8 in region 1.
  const SubscriptionId b = add_sub(CloudType::kPublic);
  const auto pub_clusters0 = topo_.clusters_in(RegionId(0), CloudType::kPublic);
  const auto pub_clusters1 = topo_.clusters_in(RegionId(1), CloudType::kPublic);
  const NodeId node0 = topo_.cluster(pub_clusters0[0]).nodes.front();
  const NodeId node1 = topo_.cluster(pub_clusters1[0]).nodes.front();

  fx_.add_vm(CloudType::kPublic, fx_.public_sub, node0, 4, 0, kNoEnd);
  fx_.add_vm(CloudType::kPublic, b, node0, 4, 0, kNoEnd);
  fx_.add_vm(CloudType::kPublic, b, node1, 8, 0, kNoEnd, nullptr, RegionId(1));

  const auto spread = region_spread(AnalysisContext(fx_.trace), CloudType::kPublic, kDay);
  ASSERT_EQ(spread.regions_per_subscription.size(), 2u);
  EXPECT_DOUBLE_EQ(spread.regions_per_subscription[0], 1.0);
  EXPECT_DOUBLE_EQ(spread.regions_per_subscription[1], 2.0);
  // Single-region sub holds 4 of 16 cores.
  EXPECT_DOUBLE_EQ(spread.single_region_core_share, 0.25);
  EXPECT_DOUBLE_EQ(spread.cumulative_core_share[0], 0.25);
  EXPECT_DOUBLE_EQ(spread.cumulative_core_share[1], 1.0);
}

TEST_F(DeploymentTest, EmptyTraceGivesEmptyResults) {
  EXPECT_TRUE(
      vms_per_subscription(AnalysisContext(fx_.trace), CloudType::kPublic, kDay).empty());
  const auto spread = region_spread(AnalysisContext(fx_.trace), CloudType::kPublic, kDay);
  EXPECT_TRUE(spread.regions_per_subscription.empty());
  EXPECT_DOUBLE_EQ(spread.single_region_core_share, 0.0);
}

}  // namespace
}  // namespace cloudlens::analysis
