#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace cloudlens::stats {
namespace {

TEST(DescriptiveTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7}), 7.0);
}

TEST(DescriptiveTest, VarianceSampleDenominator) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, VarianceDegenerateCases) {
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3, 3, 3}), 0.0);
}

TEST(DescriptiveTest, CoefficientOfVariation) {
  const std::vector<double> xs = {10, 10, 10};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
  const std::vector<double> ys = {0, 0, 0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(ys), 0.0);  // zero mean -> 0
  const std::vector<double> zs = {1, 3};
  EXPECT_NEAR(coefficient_of_variation(zs), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(DescriptiveTest, BurstySeriesHasHigherCvThanSmooth) {
  // The Fig. 3(d) discriminator: bursts inflate CV.
  std::vector<double> smooth, bursty;
  for (int i = 0; i < 168; ++i) {
    smooth.push_back(10.0 + (i % 24));
    bursty.push_back(i % 60 == 0 ? 400.0 : 5.0);
  }
  EXPECT_GT(coefficient_of_variation(bursty),
            3.0 * coefficient_of_variation(smooth));
}

TEST(QuantileTest, Median) {
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{3, 1, 2}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{1, 2, 3, 4}, 0.5), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> xs = {5, 1, 9};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(QuantileTest, LinearInterpolation) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile(std::vector<double>{4}, 0.3), 4.0);
}

TEST(QuantileTest, EmptyThrows) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), cloudlens::CheckError);
}

TEST(QuantileTest, SortedVariantAgrees) {
  const std::vector<double> sorted = {1, 2, 3, 4, 5, 6, 7};
  for (double p : {0.0, 0.1, 0.33, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(sorted, p), quantile_sorted(sorted, p));
  }
}

TEST(StreamingMomentsTest, MatchesBatch) {
  cloudlens::Rng rng(1);
  std::vector<double> xs(5000);
  StreamingMoments m;
  for (auto& x : xs) {
    x = rng.normal(3.0, 2.0);
    m.add(x);
  }
  EXPECT_EQ(m.count(), xs.size());
  EXPECT_NEAR(m.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(m.variance(), variance(xs), 1e-9);
  EXPECT_NEAR(m.stddev(), stddev(xs), 1e-9);
}

TEST(StreamingMomentsTest, MinMaxTracked) {
  StreamingMoments m;
  m.add(5);
  m.add(-2);
  m.add(3);
  EXPECT_DOUBLE_EQ(m.min(), -2);
  EXPECT_DOUBLE_EQ(m.max(), 5);
}

TEST(StreamingMomentsTest, MergeEqualsCombinedStream) {
  cloudlens::Rng rng(2);
  StreamingMoments a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    (i % 3 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingMomentsTest, MergeWithEmpty) {
  StreamingMoments a, empty;
  a.add(1);
  a.add(2);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(SummaryTest, KnownValues) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
}

TEST(SummaryTest, EmptyIsZeroed) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

}  // namespace
}  // namespace cloudlens::stats
