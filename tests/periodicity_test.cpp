#include "stats/periodicity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "workloads/patterns.h"

namespace cloudlens::stats {
namespace {

TimeSeries sinusoid(SimDuration period, double noise_sigma,
                    std::uint64_t seed = 1,
                    TimeGrid grid = week_telemetry_grid()) {
  cloudlens::Rng rng(seed);
  TimeSeries s(grid);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double phase =
        2.0 * std::numbers::pi * double(grid.at(i)) / double(period);
    s[i] = 0.3 + 0.2 * std::sin(phase) + rng.normal(0, noise_sigma);
  }
  return s;
}

TEST(DetectPeriodTest, FindsDailyPeriod) {
  const auto detection = detect_period(sinusoid(kDay, 0.02));
  ASSERT_TRUE(detection.periodic);
  EXPECT_NEAR(double(detection.period), double(kDay), double(kDay) * 0.1);
  EXPECT_GT(detection.strength, 0.5);
}

TEST(DetectPeriodTest, FindsHourlyPeriod) {
  PeriodDetectorOptions opts;
  const auto detection = detect_period(sinusoid(kHour, 0.02), opts);
  ASSERT_TRUE(detection.periodic);
  EXPECT_NEAR(double(detection.period), double(kHour), double(kHour) * 0.15);
}

TEST(DetectPeriodTest, NoiseIsNotPeriodic) {
  cloudlens::Rng rng(9);
  TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = rng.uniform(0.1, 0.3);
  EXPECT_FALSE(detect_period(s).periodic);
}

TEST(DetectPeriodTest, ConstantSeriesNotPeriodic) {
  TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = 0.25;
  EXPECT_FALSE(detect_period(s).periodic);
}

TEST(DetectPeriodTest, ShortSeriesNotPeriodic) {
  TimeSeries s(TimeGrid{0, kTelemetryInterval, 4});
  EXPECT_FALSE(detect_period(s).periodic);
}

TEST(DetectPeriodTest, RespectsPeriodRange) {
  PeriodDetectorOptions opts;
  opts.min_period = 2 * kHour;  // excludes a 1h signal
  const auto detection = detect_period(sinusoid(kHour, 0.02), opts);
  EXPECT_FALSE(detection.periodic && detection.period < 2 * kHour);
}

TEST(DetectPeriodTest, SurvivesModerateNoise) {
  const auto detection = detect_period(sinusoid(kDay, 0.10));
  ASSERT_TRUE(detection.periodic);
  EXPECT_NEAR(double(detection.period), double(kDay), double(kDay) * 0.1);
}

class PeriodicityScoreTest
    : public ::testing::TestWithParam<std::pair<SimDuration, SimDuration>> {};

TEST_P(PeriodicityScoreTest, ScoreHighAtTruePeriodLowElsewhere) {
  const auto [true_period, probe] = GetParam();
  const auto s = sinusoid(true_period, 0.03);
  const double at_truth = periodicity_score(s, true_period);
  const double at_probe = periodicity_score(s, probe);
  EXPECT_GT(at_truth, 0.5);
  EXPECT_LT(at_probe, at_truth);
}

INSTANTIATE_TEST_SUITE_P(
    Periods, PeriodicityScoreTest,
    ::testing::Values(std::pair{kDay, kHour}, std::pair{kHour, 7 * kHour},
                      std::pair{12 * kHour, 5 * kHour}));

TEST(PeriodicityScoreTest, SmoothDiurnalScoresLowAtHourLag) {
  // Regression test: a smooth daily curve has a high ACF at *every* small
  // lag; the hill-minus-valley score must not mistake that for hourly
  // periodicity (this drove diurnal VMs into the hourly-peak class before).
  workloads::DiurnalUtilization::Params params;
  const workloads::DiurnalUtilization model(params, 77);
  TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = model.at(s.grid().at(i));
  EXPECT_LT(periodicity_score(s, kHour), 0.15);
  EXPECT_GT(periodicity_score(s, kDay), 0.5);
}

TEST(PeriodicityScoreTest, HourlyPeakPatternScoresHighAtHourLag) {
  workloads::HourlyPeakUtilization::Params params;
  const workloads::HourlyPeakUtilization model(params, 78);
  TimeSeries s(week_telemetry_grid());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = model.at(s.grid().at(i));
  EXPECT_GT(periodicity_score(s, kHour), 0.2);
}

TEST(PeriodicityScoreTest, DegenerateLagsReturnZero) {
  const auto s = sinusoid(kDay, 0.02);
  // Period of one grid step and periods longer than half the series.
  EXPECT_DOUBLE_EQ(periodicity_score(s, 5 * kMinute), 0.0);
  EXPECT_DOUBLE_EQ(periodicity_score(s, 6 * kDay), 0.0);
}

}  // namespace
}  // namespace cloudlens::stats
