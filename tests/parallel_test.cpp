// Unit tests for the deterministic parallel execution engine
// (common/parallel.h): scheduling edge cases, exception propagation,
// nested-call safety, and the fixed reduce chunk grid.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace cloudlens {
namespace {

TEST(ParallelConfigTest, ZeroResolvesToHardwareConcurrency) {
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ParallelConfig{}.resolved(), hw > 0 ? hw : 1);
  EXPECT_EQ(ParallelConfig::serial().resolved(), 1u);
  EXPECT_EQ(ParallelConfig::with_threads(3).resolved(), 3u);
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; });
  parallel_for(
      0, [&](std::size_t) { ++calls; }, ParallelConfig::serial());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{8}}) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(
        n, [&](std::size_t i) { ++hits[i]; },
        ParallelConfig::with_threads(threads));
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, FewerItemsThanThreads) {
  // n < threads: every index still runs exactly once.
  std::vector<std::atomic<int>> hits(3);
  parallel_for(
      3, [&](std::size_t i) { ++hits[i]; }, ParallelConfig::with_threads(16));
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ManyMoreItemsThanThreads) {
  const std::size_t n = 50000;
  std::atomic<std::size_t> sum{0};
  parallel_for(
      n, [&](std::size_t i) { sum += i; }, ParallelConfig::with_threads(4));
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ParallelMapTest, ResultsInIndexOrderAtAnyThreadCount) {
  const std::size_t n = 257;  // not a multiple of any block size
  const auto serial = parallel_map<std::size_t>(
      n, [](std::size_t i) { return i * i; }, ParallelConfig::serial());
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}, std::size_t{32}}) {
    const auto parallel = parallel_map<std::size_t>(
        n, [](std::size_t i) { return i * i; },
        ParallelConfig::with_threads(threads));
    EXPECT_EQ(parallel, serial) << "threads " << threads;
  }
}

TEST(ParallelMapTest, MoveOnlyFriendlyTypes) {
  const auto out = parallel_map<std::vector<int>>(
      10, [](std::size_t i) { return std::vector<int>(i, int(i)); },
      ParallelConfig::with_threads(4));
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].size(), i);
  }
}

TEST(ParallelReduceTest, ChunkGridIsPureFunctionOfN) {
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{1000}, std::size_t{123457}}) {
    const std::size_t chunks = detail::reduce_chunk_count(n);
    ASSERT_GE(chunks, 1u);
    ASSERT_LE(chunks, n);
    // Chunks tile [0, n) exactly, in order, without gaps or overlap.
    std::size_t expect_begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = detail::reduce_chunk_bounds(n, c);
      EXPECT_EQ(begin, expect_begin);
      EXPECT_GT(end, begin);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ParallelReduceTest, FloatingPointSumBitIdenticalAcrossThreadCounts) {
  // Values chosen so naive reassociation would change the result.
  const std::size_t n = 10001;
  std::vector<double> values(n);
  Rng rng(7);
  for (auto& v : values) v = rng.exponential(1.0) * 1e-3 + 1e6;

  const auto sum_with = [&](std::size_t threads) {
    return parallel_reduce<double>(
        n, 0.0, [&](double& acc, std::size_t i) { acc += values[i]; },
        [](double& total, const double& partial) { total += partial; },
        ParallelConfig::with_threads(threads));
  };
  const double serial = sum_with(1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}, std::size_t{0}}) {
    const double parallel = sum_with(threads);
    // Bit-identical, not just approximately equal.
    EXPECT_EQ(serial, parallel) << "threads " << threads;
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  const double out = parallel_reduce<double>(
      0, 42.0, [](double&, std::size_t) { FAIL(); },
      [](double&, const double&) { FAIL(); });
  EXPECT_EQ(out, 42.0);
}

TEST(ParallelExceptionTest, FirstExceptionPropagates) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    try {
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("boom at 57");
          },
          ParallelConfig::with_threads(threads));
      FAIL() << "expected exception, threads " << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 57");
    }
  }
}

TEST(ParallelExceptionTest, PoolIsReusableAfterException) {
  EXPECT_THROW(parallel_for(
                   8, [](std::size_t) { throw std::logic_error("x"); },
                   ParallelConfig::with_threads(4)),
               std::logic_error);
  // The pool must still schedule correctly after the failed batch.
  std::atomic<int> calls{0};
  parallel_for(
      100, [&](std::size_t) { ++calls; }, ParallelConfig::with_threads(4));
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelNestingTest, NestedCallsRunInlineAndComplete) {
  // A task that itself calls parallel_for must not deadlock the pool; the
  // inner call detects the parallel region and degrades to inline serial.
  const std::size_t outer = 16, inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  parallel_for(
      outer,
      [&](std::size_t o) {
        EXPECT_TRUE(ThreadPool::inside_parallel_region() ||
                    ParallelConfig{}.resolved() == 1);
        parallel_for(
            inner, [&](std::size_t i) { ++hits[o * inner + i]; },
            ParallelConfig::with_threads(8));
      },
      ParallelConfig::with_threads(4));
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::inside_parallel_region());
}

TEST(ParallelNestingTest, OutsideRegionByDefault) {
  EXPECT_FALSE(ThreadPool::inside_parallel_region());
}

TEST(ThreadPoolTest, DedicatedPoolRunsBatches) {
  ThreadPool pool(3);
  EXPECT_GE(pool.workers(), 1u);
  std::atomic<int> calls{0};
  pool.run(10, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
  // Sequential batches on the same pool.
  pool.run(5, 2, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 15);
}

TEST(ShardSeedTest, StreamsAreStableAndDistinct) {
  // Pure function of (master, salt, index).
  EXPECT_EQ(shard_seed(42, 1, 0), shard_seed(42, 1, 0));
  // Different shard, salt, or master => different stream seed.
  EXPECT_NE(shard_seed(42, 1, 0), shard_seed(42, 1, 1));
  EXPECT_NE(shard_seed(42, 1, 0), shard_seed(42, 2, 0));
  EXPECT_NE(shard_seed(42, 1, 0), shard_seed(43, 1, 0));
  // Streams from adjacent shards decorrelate immediately.
  Rng a(shard_seed(42, 1, 0)), b(shard_seed(42, 1, 1));
  std::size_t agree = 0;
  for (int i = 0; i < 64; ++i) {
    if ((a.uniform() < 0.5) == (b.uniform() < 0.5)) ++agree;
  }
  EXPECT_GT(agree, 16u);
  EXPECT_LT(agree, 48u);
}

}  // namespace
}  // namespace cloudlens
