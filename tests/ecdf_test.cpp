#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace cloudlens::stats {
namespace {

TEST(EcdfTest, AtStepFunction) {
  Ecdf e(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(EcdfTest, AtWithDuplicates) {
  Ecdf e(std::vector<double>{1, 1, 1, 2});
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.75);
  EXPECT_DOUBLE_EQ(e.at(1.5), 0.75);
}

TEST(EcdfTest, EmptyBehaviour) {
  Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.at(3.0), 0.0);
  EXPECT_THROW(e.inverse(0.5), cloudlens::CheckError);
  EXPECT_THROW(e.min(), cloudlens::CheckError);
}

TEST(EcdfTest, InverseIsQuantile) {
  Ecdf e(std::vector<double>{10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(e.inverse(0.0), 10);
  EXPECT_DOUBLE_EQ(e.inverse(0.5), 30);
  EXPECT_DOUBLE_EQ(e.inverse(1.0), 50);
}

TEST(EcdfTest, MonotonicEverywhere) {
  cloudlens::Rng rng(3);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(0, 1);
  Ecdf e(xs);
  double prev = -1;
  for (double x = 0.0; x < 10.0; x += 0.05) {
    const double f = e.at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(EcdfTest, CurveEndpoints) {
  Ecdf e(std::vector<double>{1, 2, 3});
  const auto ys = e.curve(11);
  ASSERT_EQ(ys.size(), 11u);
  EXPECT_GT(ys.front(), 0.0);  // F(min) counts the min sample
  EXPECT_DOUBLE_EQ(ys.back(), 1.0);
  for (std::size_t i = 1; i < ys.size(); ++i) EXPECT_GE(ys[i], ys[i - 1]);
}

TEST(EcdfTest, SortedIsSorted) {
  Ecdf e(std::vector<double>{3, 1, 2});
  const auto s = e.sorted();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(KsStatisticTest, IdenticalSamplesZero) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  Ecdf a(xs), b(xs);
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
}

TEST(KsStatisticTest, DisjointSamplesOne) {
  Ecdf a(std::vector<double>{1, 2, 3});
  Ecdf b(std::vector<double>{10, 20, 30});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KsStatisticTest, SymmetricAndBounded) {
  cloudlens::Rng rng(4);
  std::vector<double> xs(300), ys(200);
  for (auto& x : xs) x = rng.normal(0, 1);
  for (auto& y : ys) y = rng.normal(0.5, 1);
  Ecdf a(xs), b(ys);
  const double d1 = ks_statistic(a, b);
  const double d2 = ks_statistic(b, a);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GT(d1, 0.0);
  EXPECT_LE(d1, 1.0);
}

TEST(KsStatisticTest, SeparatedCloudsShowLargeGap) {
  // Mimics Fig. 1(a): private deployments (large) vs public (small) should
  // be clearly separated in KS distance.
  cloudlens::Rng rng(5);
  std::vector<double> priv(400), pub(400);
  for (auto& x : priv) x = rng.lognormal(std::log(100.0), 0.9);
  for (auto& x : pub) x = rng.lognormal(std::log(3.0), 1.1);
  EXPECT_GT(ks_statistic(Ecdf(priv), Ecdf(pub)), 0.7);
}

}  // namespace
}  // namespace cloudlens::stats
