#include "cloudsim/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "cloudsim/sku.h"

namespace cloudlens {
namespace {

TEST(TopologyTest, BuilderWiresHierarchy) {
  Topology topo;
  const RegionId region = topo.add_region("east", -5);
  const DatacenterId dc = topo.add_datacenter(region);
  const ClusterId cluster =
      topo.add_cluster(dc, CloudType::kPrivate, NodeSku{});
  const RackId rack = topo.add_rack(cluster);
  const NodeId node = topo.add_node(rack);

  EXPECT_EQ(topo.region(region).name, "east");
  EXPECT_EQ(topo.datacenter(dc).region, region);
  EXPECT_EQ(topo.cluster(cluster).datacenter, dc);
  EXPECT_EQ(topo.cluster(cluster).region, region);
  EXPECT_EQ(topo.rack(rack).cluster, cluster);
  EXPECT_EQ(topo.node(node).rack, rack);
  EXPECT_EQ(topo.node(node).cluster, cluster);
  EXPECT_EQ(topo.node(node).region, region);
  EXPECT_EQ(topo.node(node).cloud, CloudType::kPrivate);
}

TEST(TopologyTest, NodeInheritsClusterSku) {
  Topology topo;
  const auto region = topo.add_region("r", 0);
  const auto dc = topo.add_datacenter(region);
  NodeSku sku{"big", 96, 768};
  const auto cluster = topo.add_cluster(dc, CloudType::kPublic, sku);
  const auto node = topo.add_node(topo.add_rack(cluster));
  EXPECT_DOUBLE_EQ(topo.node(node).total_cores, 96);
  EXPECT_DOUBLE_EQ(topo.node(node).total_memory_gb, 768);
}

TEST(TopologyTest, BuildFromSpecCounts) {
  TopologySpec spec;
  spec.regions = {{"a", 0}, {"b", -3}, {"c", 2}};
  spec.datacenters_per_region = 2;
  spec.clusters_per_cloud = 2;
  spec.racks_per_cluster = 3;
  spec.nodes_per_rack = 4;
  const Topology topo = build_topology(spec);

  EXPECT_EQ(topo.regions().size(), 3u);
  EXPECT_EQ(topo.datacenters().size(), 6u);
  // 2 clusters per cloud x 2 clouds x 6 DCs.
  EXPECT_EQ(topo.clusters().size(), 24u);
  EXPECT_EQ(topo.racks().size(), 24u * 3);
  EXPECT_EQ(topo.nodes().size(), 24u * 3 * 4);
}

TEST(TopologyTest, CloudsGetDisjointClusters) {
  const Topology topo = build_topology(default_topology_spec());
  const auto priv = topo.clusters_of(CloudType::kPrivate);
  const auto pub = topo.clusters_of(CloudType::kPublic);
  EXPECT_EQ(priv.size() + pub.size(), topo.clusters().size());
  EXPECT_EQ(priv.size(), pub.size());  // symmetric spec
  for (const auto id : priv)
    EXPECT_EQ(topo.cluster(id).cloud, CloudType::kPrivate);
}

TEST(TopologyTest, ClustersInFiltersRegionAndCloud) {
  const Topology topo = build_topology(default_topology_spec());
  const RegionId region(0);
  const auto clusters = topo.clusters_in(region, CloudType::kPublic);
  EXPECT_FALSE(clusters.empty());
  for (const auto id : clusters) {
    EXPECT_EQ(topo.cluster(id).region, region);
    EXPECT_EQ(topo.cluster(id).cloud, CloudType::kPublic);
  }
}

TEST(TopologyTest, CoreTotals) {
  TopologySpec spec;
  spec.regions = {{"a", 0}};
  spec.datacenters_per_region = 1;
  spec.clusters_per_cloud = 2;
  spec.racks_per_cluster = 2;
  spec.nodes_per_rack = 5;
  spec.node_sku = NodeSku{"n", 10, 40};
  const Topology topo = build_topology(spec);
  const auto clusters = topo.clusters_in(RegionId(0), CloudType::kPrivate);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_DOUBLE_EQ(topo.cluster_total_cores(clusters[0]), 100);
  EXPECT_DOUBLE_EQ(
      topo.region_total_cores(RegionId(0), CloudType::kPrivate), 200);
}

TEST(TopologyTest, DefaultSpecHasTenRegionsNineZones) {
  const TopologySpec spec = default_topology_spec();
  EXPECT_EQ(spec.regions.size(), 10u);
  std::set<double> zones;
  for (const auto& [_, tz] : spec.regions) zones.insert(tz);
  EXPECT_EQ(zones.size(), 9u);
}

TEST(TopologyTest, InvalidParentThrows) {
  Topology topo;
  EXPECT_THROW(topo.add_datacenter(RegionId(5)), CheckError);
  EXPECT_THROW(topo.add_rack(ClusterId(0)), CheckError);
  EXPECT_THROW(topo.add_node(RackId(9)), CheckError);
}

TEST(SkuCatalogTest, MainstreamValid) {
  const auto catalog = SkuCatalog::mainstream();
  EXPECT_EQ(catalog.size(), 5u);
  EXPECT_DOUBLE_EQ(catalog.max_cores(), 16);
  EXPECT_DOUBLE_EQ(catalog.max_memory_gb(), 64);
}

TEST(SkuCatalogTest, ExtremeTailsWider) {
  const auto mainstream = SkuCatalog::mainstream();
  const auto tails = SkuCatalog::with_extreme_tails();
  EXPECT_GT(tails.max_cores(), mainstream.max_cores());
  EXPECT_GT(tails.max_memory_gb(), mainstream.max_memory_gb());
  // Tails include sub-1GB-per-core burstables.
  double min_mem = 1e9;
  for (const auto& sku : tails.skus()) min_mem = std::min(min_mem, sku.memory_gb);
  EXPECT_LT(min_mem, 1.0);
}

TEST(SkuCatalogTest, InvalidCatalogThrows) {
  EXPECT_THROW(SkuCatalog({}, {}), CheckError);
  EXPECT_THROW(SkuCatalog({VmSku{"a", 1, 4}}, {1.0, 2.0}), CheckError);
  EXPECT_THROW(SkuCatalog({VmSku{"a", 0, 4}}, {1.0}), CheckError);
  EXPECT_THROW(SkuCatalog({VmSku{"a", 1, 4}}, {-1.0}), CheckError);
}

}  // namespace
}  // namespace cloudlens
