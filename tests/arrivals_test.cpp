#include "workloads/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.h"
#include "stats/descriptive.h"

namespace cloudlens::workloads {
namespace {

std::vector<double> hourly_counts(const std::vector<SimTime>& arrivals,
                                  SimTime begin, SimTime end) {
  std::vector<double> counts((end - begin) / kHour, 0.0);
  for (const SimTime t : arrivals)
    ++counts[static_cast<std::size_t>((t - begin) / kHour)];
  return counts;
}

TEST(DiurnalArrivalTest, RatePeaksAtPeakHour) {
  DiurnalArrivalProcess process({});
  const double at_peak = process.rate_per_hour(kDay + 14 * kHour);
  const double at_night = process.rate_per_hour(kDay + 3 * kHour);
  EXPECT_GT(at_peak, at_night * 2);
  EXPECT_NEAR(at_peak, process.params().base_per_hour, 1e-9);
}

TEST(DiurnalArrivalTest, WeekendScaleApplies) {
  DiurnalArrivalProcess process({});
  const double weekday = process.rate_per_hour(2 * kDay + 14 * kHour);
  const double weekend = process.rate_per_hour(5 * kDay + 14 * kHour);
  EXPECT_NEAR(weekend / weekday, process.params().weekend_scale, 1e-9);
}

TEST(DiurnalArrivalTest, TimeZoneShiftsRate) {
  DiurnalArrivalProcess::Params p;
  p.tz_offset_hours = -8;
  DiurnalArrivalProcess west(p);
  // 14:00 sim-clock is 06:00 local in the west: low rate.
  EXPECT_LT(west.rate_per_hour(14 * kHour),
            west.rate_per_hour(22 * kHour));
}

TEST(DiurnalArrivalTest, ArrivalsSortedAndInWindow) {
  DiurnalArrivalProcess process({});
  Rng rng(1);
  const auto arrivals = process.sample(rng, kDay, 2 * kDay);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (const SimTime t : arrivals) {
    EXPECT_GE(t, kDay);
    EXPECT_LT(t, 2 * kDay);
  }
}

TEST(DiurnalArrivalTest, CountMatchesIntegratedRate) {
  DiurnalArrivalProcess process({});
  Rng rng(2);
  double expected = 0;
  for (SimTime h = 0; h < kWeek; h += kHour)
    expected += process.rate_per_hour(h + kHour / 2);
  const auto arrivals = process.sample(rng, 0, kWeek);
  EXPECT_NEAR(double(arrivals.size()), expected, expected * 0.05);
}

TEST(DiurnalArrivalTest, DaytimeArrivalsDominate) {
  DiurnalArrivalProcess process({});
  Rng rng(3);
  const auto arrivals = process.sample(rng, 0, 5 * kDay);
  std::size_t day = 0, night = 0;
  for (const SimTime t : arrivals) {
    const int h = hour_of_day(t);
    if (h >= 10 && h < 18) ++day;
    if (h >= 0 && h < 8) ++night;
  }
  EXPECT_GT(day, night * 2);
}

TEST(BurstyArrivalTest, EpochCountMatchesRate) {
  BurstyArrivalProcess::Params p;
  p.bursts_per_week = 4.0;
  BurstyArrivalProcess process(p);
  Rng rng(4);
  double total = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i)
    total += double(process.sample_burst_epochs(rng, 0, kWeek).size());
  EXPECT_NEAR(total / trials, 4.0, 0.35);
}

TEST(BurstyArrivalTest, BurstSizeLognormalMean) {
  BurstyArrivalProcess::Params p;
  p.burst_size_mean = 300;
  p.burst_size_sigma = 0.5;
  BurstyArrivalProcess process(p);
  Rng rng(5);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    sum += double(process.sample_burst_size(rng));
  // Lognormal mean = exp(mu + sigma^2/2) = 300 * exp(0.125).
  EXPECT_NEAR(sum / n, 300 * std::exp(0.125), 15.0);
}

TEST(BurstyArrivalTest, OffsetsWithinWindow) {
  BurstyArrivalProcess process({});
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const SimDuration off = process.sample_burst_offset(rng);
    EXPECT_GE(off, 0);
    EXPECT_LE(off, process.params().burst_window);
  }
}

TEST(BurstyArrivalTest, HigherCvThanDiurnal) {
  // The Fig. 3(d) contrast at the arrival-process level: hourly counts of
  // the bursty process vary far more than the diurnal process's.
  DiurnalArrivalProcess diurnal({});
  BurstyArrivalProcess::Params bp;
  bp.base_per_hour = 4.0;
  bp.bursts_per_week = 3.0;
  bp.burst_size_mean = 500;
  BurstyArrivalProcess bursty(bp);
  Rng rng1(7), rng2(8);
  const auto cv = [](const std::vector<double>& xs) {
    return stats::coefficient_of_variation(xs);
  };
  const double diurnal_cv =
      cv(hourly_counts(diurnal.sample(rng1, 0, kWeek), 0, kWeek));
  const double bursty_cv =
      cv(hourly_counts(bursty.sample(rng2, 0, kWeek), 0, kWeek));
  EXPECT_GT(bursty_cv, 2.0 * diurnal_cv);
}

TEST(BurstyArrivalTest, SampleSortedWithinWindow) {
  BurstyArrivalProcess process({});
  Rng rng(9);
  const auto arrivals = process.sample(rng, kDay, 3 * kDay);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (const SimTime t : arrivals) {
    EXPECT_GE(t, kDay);
    EXPECT_LT(t, 3 * kDay);
  }
}

TEST(ArrivalsTest, InvalidWindowThrows) {
  DiurnalArrivalProcess diurnal({});
  BurstyArrivalProcess bursty({});
  Rng rng(10);
  EXPECT_THROW(diurnal.sample(rng, kDay, kDay), CheckError);
  EXPECT_THROW(bursty.sample_burst_epochs(rng, 2 * kDay, kDay), CheckError);
}

}  // namespace
}  // namespace cloudlens::workloads
